// Mesh/SAMR substrate tests: grid geometry (EPA edges), sibling copies,
// prolongation/restriction, flux correction conservation, Berger–Rigoutsos
// clustering, hierarchy rebuild with particle migration, and the two-step
// boundary fill.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "mesh/berger_rigoutsos.hpp"
#include "mesh/boundary.hpp"
#include "mesh/box.hpp"
#include "mesh/field.hpp"
#include "mesh/grid.hpp"
#include "mesh/hierarchy.hpp"
#include "mesh/interpolate.hpp"
#include "mesh/project.hpp"
#include "mesh/topology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace enzo::mesh;
namespace ext = enzo::ext;

namespace {
std::vector<Field> hydro_list() {
  auto h = hydro_fields();
  return {h.begin(), h.end()};
}

GridSpec spec_at(int level, IndexBox box, Index3 level_dims, int r = 2,
                 int ng = 3) {
  GridSpec s;
  s.level = level;
  s.box = box;
  s.level_dims = level_dims;
  s.refine_factor = r;
  s.nghost = ng;
  return s;
}
}  // namespace

// ---- IndexBox ----------------------------------------------------------------

TEST(IndexBox, BasicOps) {
  IndexBox a{{0, 0, 0}, {4, 4, 4}};
  IndexBox b{{2, 2, 2}, {6, 6, 6}};
  EXPECT_EQ(a.volume(), 64);
  EXPECT_FALSE(a.empty());
  const IndexBox c = a.intersect(b);
  EXPECT_EQ(c, (IndexBox{{2, 2, 2}, {4, 4, 4}}));
  EXPECT_TRUE(a.contains(Index3{3, 3, 3}));
  EXPECT_FALSE(a.contains(Index3{4, 0, 0}));
  EXPECT_TRUE(a.contains(c));
  EXPECT_FALSE(a.contains(b));
}

TEST(IndexBox, DisjointIntersectionIsEmpty) {
  IndexBox a{{0, 0, 0}, {2, 2, 2}};
  IndexBox b{{5, 5, 5}, {7, 7, 7}};
  EXPECT_TRUE(a.intersect(b).empty());
  EXPECT_EQ(a.intersect(b).volume(), 0);
}

TEST(IndexBox, RefineCoarsenRoundTrip) {
  IndexBox a{{2, 4, 6}, {6, 8, 10}};
  EXPECT_EQ(a.refined(2).coarsened(2), a);
  // Coarsening covers: box [3,7) coarsened by 2 must cover cells 1..3.
  IndexBox odd{{3, 3, 3}, {7, 7, 7}};
  const IndexBox c = odd.coarsened(2);
  EXPECT_EQ(c, (IndexBox{{1, 1, 1}, {4, 4, 4}}));
  // Negative coordinates (ghost regions) coarsen toward -inf.
  IndexBox neg{{-3, 0, 0}, {1, 1, 1}};
  EXPECT_EQ(neg.coarsened(2).lo[0], -2);
}

TEST(IndexBox, ShiftAndGrow) {
  IndexBox a{{1, 1, 1}, {3, 3, 3}};
  EXPECT_EQ(a.shifted({10, 0, -1}).lo[0], 11);
  EXPECT_EQ(a.grown(2), (IndexBox{{-1, -1, -1}, {5, 5, 5}}));
}

// ---- Grid geometry -------------------------------------------------------------

TEST(Grid, GeometryAndEdges) {
  Grid g(spec_at(0, {{0, 0, 0}, {8, 8, 8}}, {8, 8, 8}), hydro_list());
  EXPECT_EQ(g.nx(0), 8);
  EXPECT_EQ(g.ng(0), 3);
  EXPECT_EQ(g.nt(0), 14);
  EXPECT_NEAR(ext::pos_to_double(g.left_edge(0)), 0.0, 1e-30);
  EXPECT_NEAR(ext::pos_to_double(g.right_edge(0)), 1.0, 1e-30);
  EXPECT_NEAR(ext::pos_to_double(g.cell_center(0, 0, 0)[0]), 1.0 / 16, 1e-30);
}

TEST(Grid, DeepLevelEdgesAreExact) {
  // Level 30 grid: edges must be exact multiples of the dd cell width.
  const std::int64_t n = std::int64_t(8) << 30;
  Grid g(spec_at(30, {{n / 2, n / 2, n / 2}, {n / 2 + 4, n / 2 + 4, n / 2 + 4}},
                 {n, n, n}),
         hydro_list());
  const ext::pos_t dx = g.cell_width(0);
  const ext::pos_t le = g.left_edge(0);
  // le / dx recovers the integer offset exactly.
  const ext::pos_t ratio = le / dx;
  EXPECT_DOUBLE_EQ(ratio.to_double(), static_cast<double>(n / 2));
  // index_of at a cell center deep in the hierarchy is exact.
  const ext::PosVec c = g.cell_center(2, 2, 2);
  EXPECT_EQ(g.global_index_of(c[0], 0), n / 2 + 2);
  EXPECT_TRUE(g.contains_position(c));
}

TEST(Grid, DegenerateAxesHaveNoGhosts) {
  Grid g(spec_at(0, {{0, 0, 0}, {16, 1, 1}}, {16, 1, 1}), hydro_list());
  EXPECT_EQ(g.ng(0), 3);
  EXPECT_EQ(g.ng(1), 0);
  EXPECT_EQ(g.nt(1), 1);
}

TEST(Grid, FieldAccessAndMissingFieldThrows) {
  Grid g(spec_at(0, {{0, 0, 0}, {4, 4, 4}}, {4, 4, 4}), hydro_list());
  g.field(Field::kDensity).fill(2.0);
  EXPECT_DOUBLE_EQ(g.field(Field::kDensity)(0, 0, 0), 2.0);
  EXPECT_THROW((void)g.field(Field::kHI), enzo::Error);
  EXPECT_TRUE(g.has_field(Field::kDensity));
  EXPECT_FALSE(g.has_field(Field::kH2I));
}

TEST(Grid, StoreOldFieldsSnapshots) {
  Grid g(spec_at(0, {{0, 0, 0}, {4, 4, 4}}, {4, 4, 4}), hydro_list());
  g.field(Field::kDensity).fill(1.0);
  g.set_time(ext::pos_t(5.0));
  g.store_old_fields();
  g.field(Field::kDensity).fill(3.0);
  EXPECT_DOUBLE_EQ(g.old_field(Field::kDensity)(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ext::pos_to_double(g.old_time()), 5.0);
}

TEST(Grid, SiblingCopyRespectsOverlapAndShift) {
  // Two grids side by side on an 8³ level; right grid's low-x ghosts must
  // receive left grid data; periodic shift wraps the other side.
  Grid left(spec_at(0, {{0, 0, 0}, {4, 8, 8}}, {8, 8, 8}), hydro_list());
  Grid right(spec_at(0, {{4, 0, 0}, {8, 8, 8}}, {8, 8, 8}), hydro_list());
  for (int k = 0; k < left.nt(2); ++k)
    for (int j = 0; j < left.nt(1); ++j)
      for (int i = 0; i < left.nt(0); ++i)
        left.field(Field::kDensity)(i, j, k) = 100 + i;
  right.field(Field::kDensity).fill(-1.0);
  const std::int64_t copied = right.copy_from_sibling(left, {0, 0, 0});
  EXPECT_GT(copied, 0);
  // right ghost at active index -1 (global 3, storage 2) must hold left's
  // active cell global 3 (left storage i = 6 → value 106).
  EXPECT_DOUBLE_EQ(right.field(Field::kDensity)(2, 5, 5), 106.0);
  // Periodic: right's high-x ghosts (global 8,9,10) wrap to left 0,1,2.
  const std::int64_t wrapped = right.copy_from_sibling(left, {8, 0, 0});
  EXPECT_GT(wrapped, 0);
  // Global 8 → right local 4 (storage 7); wrapped source left global 0
  // (storage 3 → value 103).
  EXPECT_DOUBLE_EQ(right.field(Field::kDensity)(right.sx(4), 5, 5), 103.0);
}

TEST(Grid, CopyActiveFromLimitsToInterior) {
  Grid a(spec_at(1, {{0, 0, 0}, {8, 8, 8}}, {16, 16, 16}), hydro_list());
  Grid b(spec_at(1, {{4, 4, 4}, {12, 12, 12}}, {16, 16, 16}), hydro_list());
  a.field(Field::kDensity).fill(7.0);
  b.field(Field::kDensity).fill(0.0);
  b.copy_active_from(a, {0, 0, 0});
  // b active cells overlapping a ([4,8)³ global) got 7; ghosts stayed 0.
  EXPECT_DOUBLE_EQ(b.field(Field::kDensity)(b.sx(0), b.sy(0), b.sz(0)), 7.0);
  EXPECT_DOUBLE_EQ(b.field(Field::kDensity)(b.sx(4), b.sy(4), b.sz(4)), 0.0);
  EXPECT_DOUBLE_EQ(b.field(Field::kDensity)(0, 0, 0), 0.0);
}

// ---- prolongation / restriction ------------------------------------------------

class InterpolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    parent_ = std::make_unique<Grid>(
        spec_at(0, {{0, 0, 0}, {8, 8, 8}}, {8, 8, 8}), hydro_list());
    child_ = std::make_unique<Grid>(
        spec_at(1, {{4, 4, 4}, {12, 12, 12}}, {16, 16, 16}), hydro_list());
    child_->set_parent(parent_.get());
  }
  std::unique_ptr<Grid> parent_, child_;
};

TEST_F(InterpolationTest, ConstantFieldIsPreserved) {
  for (Field f : parent_->field_list()) parent_->field(f).fill(3.5);
  fill_active_from_parent(*child_, *parent_);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(
            child_->field(Field::kDensity)(child_->sx(i), child_->sy(j),
                                           child_->sz(k)),
            3.5);
}

TEST_F(InterpolationTest, InteriorFillConservesMass) {
  enzo::util::Rng rng(4);
  const auto rho = parent_->field(Field::kDensity);
  for (auto& v : rho) v = 1.0 + rng.uniform();
  fill_active_from_parent(*child_, *parent_);
  // Child covers parent cells [2,6)³; compare integrals (child cell volume
  // is 1/8 of parent's).
  double parent_mass = 0, child_mass = 0;
  for (int k = 2; k < 6; ++k)
    for (int j = 2; j < 6; ++j)
      for (int i = 2; i < 6; ++i)
        parent_mass += rho(parent_->sx(i), parent_->sy(j), parent_->sz(k));
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i)
        child_mass += child_->field(Field::kDensity)(
            child_->sx(i), child_->sy(j), child_->sz(k));
  EXPECT_NEAR(child_mass / 8.0, parent_mass, 1e-12 * parent_mass);
}

TEST_F(InterpolationTest, LinearRampReproducedExactly) {
  // A globally linear field is inside the minmod stencil's exactness class
  // away from array edges.
  const auto rho = parent_->field(Field::kDensity);
  for (int k = 0; k < parent_->nt(2); ++k)
    for (int j = 0; j < parent_->nt(1); ++j)
      for (int i = 0; i < parent_->nt(0); ++i) rho(i, j, k) = 10.0 + 2.0 * i;
  fill_active_from_parent(*child_, *parent_);
  // Child cell (0,*,*) center sits at parent i=2 cell, offset -0.25:
  // expected 10 + 2*(2+3) - 0.25*2 = 19.5 (storage i = 2+3).
  EXPECT_NEAR(
      child_->field(Field::kDensity)(child_->sx(0), child_->sy(0), child_->sz(0)),
      19.5, 1e-12);
  EXPECT_NEAR(
      child_->field(Field::kDensity)(child_->sx(1), child_->sy(0), child_->sz(0)),
      20.5, 1e-12);
}

TEST_F(InterpolationTest, GhostFillTimeInterpolates) {
  parent_->set_time(ext::pos_t(0.0));
  for (Field f : parent_->field_list()) parent_->field(f).fill(1.0);
  parent_->store_old_fields();  // old state = 1.0 at t=0
  for (Field f : parent_->field_list()) parent_->field(f).fill(3.0);
  parent_->set_time(ext::pos_t(1.0));  // new state = 3.0 at t=1
  child_->set_time(ext::pos_t(0.5));
  fill_ghosts_from_parent(*child_, *parent_);
  // All child ghosts should be the half-way blend 2.0.
  EXPECT_DOUBLE_EQ(child_->field(Field::kDensity)(0, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(
      child_->field(Field::kDensity)(child_->nt(0) - 1, child_->sy(2), 5), 2.0);
  // Interior untouched (still zero).
  EXPECT_DOUBLE_EQ(
      child_->field(Field::kDensity)(child_->sx(4), child_->sy(4), child_->sz(4)),
      0.0);
}

TEST_F(InterpolationTest, MonotoneNearDiscontinuity) {
  const auto rho = parent_->field(Field::kDensity);
  for (int k = 0; k < parent_->nt(2); ++k)
    for (int j = 0; j < parent_->nt(1); ++j)
      for (int i = 0; i < parent_->nt(0); ++i)
        rho(i, j, k) = i < 7 ? 1.0 : 1000.0;
  fill_active_from_parent(*child_, *parent_);
  double mn = 1e300, mx = -1e300;
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i) {
        const double v = child_->field(Field::kDensity)(
            child_->sx(i), child_->sy(j), child_->sz(k));
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
  EXPECT_GE(mn, 1.0 - 1e-12);
  EXPECT_LE(mx, 1000.0 + 1e-9);
}

TEST_F(InterpolationTest, ProjectionRestoresAverages) {
  enzo::util::Rng rng(11);
  // Put structured data on the child; project; parent covered cells must be
  // exact volume averages (density) and mass-weighted averages (velocity).
  const auto crho = child_->field(Field::kDensity);
  const auto cvx = child_->field(Field::kVelocityX);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i) {
        crho(child_->sx(i), child_->sy(j), child_->sz(k)) = 1.0 + rng.uniform();
        cvx(child_->sx(i), child_->sy(j), child_->sz(k)) = rng.uniform(-1, 1);
      }
  parent_->field(Field::kDensity).fill(-1);
  parent_->field(Field::kVelocityX).fill(-1);
  const std::int64_t updated = project_to_parent(*child_, *parent_);
  EXPECT_EQ(updated, 4 * 4 * 4);
  // Check one parent cell by hand: parent (2,2,2) covers child [0,2)³.
  double m = 0, mom = 0;
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 2; ++j)
      for (int i = 0; i < 2; ++i) {
        const double r = crho(child_->sx(i), child_->sy(j), child_->sz(k));
        m += r;
        mom += r * cvx(child_->sx(i), child_->sy(j), child_->sz(k));
      }
  EXPECT_NEAR(parent_->field(Field::kDensity)(parent_->sx(2), parent_->sy(2),
                                              parent_->sz(2)),
              m / 8.0, 1e-13);
  EXPECT_NEAR(parent_->field(Field::kVelocityX)(parent_->sx(2), parent_->sy(2),
                                                parent_->sz(2)),
              mom / m, 1e-13);
  // Uncovered parent cell untouched.
  EXPECT_DOUBLE_EQ(parent_->field(Field::kDensity)(parent_->sx(0),
                                                   parent_->sy(0),
                                                   parent_->sz(0)),
                   -1.0);
}

TEST_F(InterpolationTest, FluxCorrectionConservesMass) {
  // Give parent and child flux registers with a mismatch at the child's
  // low-x face; the correction must change the outside cell by exactly
  // (fine - coarse)/dx with the right sign.
  parent_->field(Field::kDensity).fill(1.0);
  parent_->field(Field::kVelocityX).fill(0.0);
  parent_->field(Field::kVelocityY).fill(0.0);
  parent_->field(Field::kVelocityZ).fill(0.0);
  parent_->field(Field::kTotalEnergy).fill(1.0);
  parent_->field(Field::kInternalEnergy).fill(1.0);
  child_->field(Field::kDensity).fill(1.0);
  parent_->reset_fluxes();
  child_->reset_fluxes();
  child_->reset_boundary_fluxes();
  // Coarse mass flux 2.0 on the child's low-x coarse face (parent face
  // index 2 = lower face of parent cell 2, storage i = 2+3).
  const auto pflux = parent_->flux(Field::kDensity, 0);
  const auto cflux = child_->boundary_flux(Field::kDensity, 0, 0);
  for (int k = 2; k < 6; ++k)
    for (int j = 2; j < 6; ++j)
      pflux(parent_->sx(2), parent_->sy(j), parent_->sz(k)) = 0.02;
  // Fine fluxes average to 0.03 on that face (boundary register plane).
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      cflux(0, child_->sy(j), child_->sz(k)) = 0.03;
  flux_correct_from_child(*child_, *parent_);
  // Outside cell is parent (1, j, k) for j,k in [2,6): ΔU = -(0.03-0.02)/dx,
  // and dx = 1/8 → Δρ = -0.08.
  EXPECT_NEAR(parent_->field(Field::kDensity)(parent_->sx(1), parent_->sy(3),
                                              parent_->sz(3)),
              1.0 - 0.08, 1e-12);
  // Cells away from the face untouched.
  EXPECT_DOUBLE_EQ(parent_->field(Field::kDensity)(parent_->sx(0),
                                                   parent_->sy(3),
                                                   parent_->sz(3)),
                   1.0);
  // The parent's flux register now carries the fine flux (for its own
  // parent's correction).
  EXPECT_DOUBLE_EQ(pflux(parent_->sx(2), parent_->sy(3), parent_->sz(3)), 0.03);
  // A correction that would drive density negative is rejected wholesale
  // (pathological-case guard): reset, use an absurd flux, expect no change.
  parent_->field(Field::kDensity).fill(1.0);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      cflux(0, child_->sy(j), child_->sz(k)) = 50.0;
  flux_correct_from_child(*child_, *parent_);
  EXPECT_DOUBLE_EQ(parent_->field(Field::kDensity)(parent_->sx(1),
                                                   parent_->sy(3),
                                                   parent_->sz(3)),
                   1.0);
}

// ---- Berger–Rigoutsos ----------------------------------------------------------

namespace {
bool covered(const std::vector<IndexBox>& boxes, const Index3& p) {
  for (const auto& b : boxes)
    if (b.contains(p)) return true;
  return false;
}
int cover_count(const std::vector<IndexBox>& boxes, const Index3& p) {
  int n = 0;
  for (const auto& b : boxes)
    if (b.contains(p)) ++n;
  return n;
}
}  // namespace

TEST(BergerRigoutsos, EmptyInput) {
  EXPECT_TRUE(cluster_flags({}).empty());
}

TEST(BergerRigoutsos, SingleCell) {
  auto boxes = cluster_flags({{{5, 6, 7}}});
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0], (IndexBox{{5, 6, 7}, {6, 7, 8}}));
}

TEST(BergerRigoutsos, SolidBlockIsOneBox) {
  std::vector<Index3> flags;
  for (int k = 0; k < 4; ++k)
    for (int j = 0; j < 4; ++j)
      for (int i = 0; i < 4; ++i) flags.push_back({i + 10, j + 20, k + 30});
  auto boxes = cluster_flags(flags);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0].volume(), 64);
}

TEST(BergerRigoutsos, TwoSeparatedClumpsSplitAtHole) {
  std::vector<Index3> flags;
  for (int k = 0; k < 3; ++k)
    for (int j = 0; j < 3; ++j)
      for (int i = 0; i < 3; ++i) {
        flags.push_back({i, j, k});
        flags.push_back({i + 20, j, k});
      }
  auto boxes = cluster_flags(flags);
  EXPECT_EQ(boxes.size(), 2u);
  for (const auto& b : boxes) EXPECT_EQ(b.volume(), 27);
}

TEST(BergerRigoutsos, AllFlagsCoveredOnce) {
  enzo::util::Rng rng(21);
  std::vector<Index3> flags;
  std::set<std::array<std::int64_t, 3>> seen;
  for (int n = 0; n < 300; ++n) {
    Index3 p{static_cast<std::int64_t>(rng.uniform(0, 40)),
             static_cast<std::int64_t>(rng.uniform(0, 40)),
             static_cast<std::int64_t>(rng.uniform(0, 40))};
    if (seen.insert({p[0], p[1], p[2]}).second) flags.push_back(p);
  }
  auto boxes = cluster_flags(flags);
  for (const auto& p : flags) EXPECT_EQ(cover_count(boxes, p), 1) << p[0];
  // Boxes must not overlap anywhere (sampled check on corners).
  for (std::size_t a = 0; a < boxes.size(); ++a)
    for (std::size_t b = a + 1; b < boxes.size(); ++b)
      EXPECT_TRUE(boxes[a].intersect(boxes[b]).empty());
}

TEST(BergerRigoutsos, EfficiencyTargetMet) {
  // An L-shaped region should be split rather than covered by one huge box.
  std::vector<Index3> flags;
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 3; ++j) {
      flags.push_back({i, j, 0});  // horizontal bar
      flags.push_back({j, i, 0});  // vertical bar
    }
  }
  ClusterParams p;
  p.min_efficiency = 0.7;
  auto boxes = cluster_flags(flags, p);
  std::int64_t covered_cells = 0;
  for (const auto& b : boxes) covered_cells += b.volume();
  // Count unique flags.
  std::set<std::array<std::int64_t, 3>> uniq;
  for (const auto& f : flags) uniq.insert({f[0], f[1], f[2]});
  EXPECT_GE(static_cast<double>(uniq.size()) / covered_cells, 0.65);
  for (const auto& f : flags) EXPECT_TRUE(covered(boxes, f));
}

TEST(BergerRigoutsos, DuplicateFlagsStillCoveredOnce) {
  // Repeated flags (a flagger may emit the same cell from overlapping
  // criteria) must not produce overlapping boxes or inflated clusters.
  std::vector<Index3> flags;
  for (int rep = 0; rep < 3; ++rep)
    for (int i = 0; i < 4; ++i) flags.push_back({i, 2, 2});
  auto boxes = cluster_flags(flags);
  for (const auto& f : flags) EXPECT_EQ(cover_count(boxes, f), 1);
  std::int64_t covered_cells = 0;
  for (const auto& b : boxes) covered_cells += b.volume();
  EXPECT_EQ(covered_cells, 4);
}

TEST(BergerRigoutsos, DegenerateLineAndPlaneClusters) {
  // A collinear run of flags: one box of thickness 1 in the other axes.
  std::vector<Index3> line;
  for (int i = 0; i < 12; ++i) line.push_back({i, 5, 5});
  auto lboxes = cluster_flags(line);
  ASSERT_EQ(lboxes.size(), 1u);
  EXPECT_EQ(lboxes[0], (IndexBox{{0, 5, 5}, {12, 6, 6}}));
  // A planar sheet: thickness 1 along z, every flag covered exactly once.
  std::vector<Index3> plane;
  for (int j = 0; j < 6; ++j)
    for (int i = 0; i < 6; ++i) plane.push_back({i, j, 3});
  auto pboxes = cluster_flags(plane);
  std::int64_t covered_cells = 0;
  for (const auto& b : pboxes) {
    EXPECT_EQ(b.extent(2), 1);
    covered_cells += b.volume();
  }
  EXPECT_EQ(covered_cells, 36);
  for (const auto& f : plane) EXPECT_EQ(cover_count(pboxes, f), 1);
}

TEST(BergerRigoutsos, ClustersTouchingDomainEdgeStayInDomain) {
  // Flag whole faces of the root domain (including the corner columns) and
  // rebuild: the clustered subgrids must stay inside the level-1 domain and
  // remain parent-aligned even where the cluster hugs the boundary.
  HierarchyParams p;
  p.root_dims = {16, 16, 16};
  p.max_level = 1;  // the flagger marks domain faces at every level
  Hierarchy h(p);
  h.build_root();
  for (Grid* g : h.grids(0)) {
    for (Field f : g->field_list()) g->field(f).fill(1.0);
    g->store_old_fields();
  }
  h.rebuild(1, [](const Grid& g, std::vector<Index3>& flags) {
    const Index3 dims = g.spec().level_dims;
    for (std::int64_t k = g.box().lo[2]; k < g.box().hi[2]; ++k)
      for (std::int64_t j = g.box().lo[1]; j < g.box().hi[1]; ++j)
        for (std::int64_t i = g.box().lo[0]; i < g.box().hi[0]; ++i)
          if (i == 0 || i == dims[0] - 1 || j == 0 || j == dims[1] - 1)
            flags.push_back({i, j, k});
  });
  ASSERT_GE(h.deepest_level(), 1);
  EXPECT_FALSE(h.grids(1).empty());
  const Index3 l1_dims{32, 32, 32};
  bool touches_low = false, touches_high = false;
  for (const Grid* g : h.grids(1)) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(g->box().lo[d], 0);
      EXPECT_LE(g->box().hi[d], l1_dims[d]);
      EXPECT_EQ(g->box().lo[d] % 2, 0);
      EXPECT_EQ(g->box().hi[d] % 2, 0);
    }
    touches_low = touches_low || g->box().lo[0] == 0;
    touches_high = touches_high || g->box().hi[0] == l1_dims[0];
  }
  EXPECT_TRUE(touches_low);
  EXPECT_TRUE(touches_high);
  h.check_invariants();
}

// ---- Hierarchy -----------------------------------------------------------------

TEST(Hierarchy, BuildRootSingleAndTiled) {
  HierarchyParams p;
  p.root_dims = {16, 16, 16};
  Hierarchy h1(p);
  h1.build_root(1);
  EXPECT_EQ(h1.num_grids(0), 1u);
  Hierarchy h2(p);
  h2.build_root(2);
  EXPECT_EQ(h2.num_grids(0), 8u);
  h2.check_invariants();
  EXPECT_EQ(h2.total_cells(), 16 * 16 * 16);
  EXPECT_EQ(h2.descriptors(0).size(), 8u);
}

TEST(Hierarchy, LevelDims) {
  HierarchyParams p;
  p.root_dims = {8, 8, 1};
  p.refine_factor = 4;
  Hierarchy h(p);
  EXPECT_EQ(h.level_dims(0), (Index3{8, 8, 1}));
  EXPECT_EQ(h.level_dims(2), (Index3{128, 128, 1}));
}

namespace {
/// Flag a fixed global sphere of parent cells around `center01` (fractions
/// of the domain) with radius frac.
Hierarchy::FlagFn sphere_flagger(std::array<double, 3> center01, double frac) {
  return [center01, frac](const Grid& g, std::vector<Index3>& flags) {
    const Index3 dims = g.spec().level_dims;
    for (std::int64_t k = g.box().lo[2]; k < g.box().hi[2]; ++k)
      for (std::int64_t j = g.box().lo[1]; j < g.box().hi[1]; ++j)
        for (std::int64_t i = g.box().lo[0]; i < g.box().hi[0]; ++i) {
          const double x = (i + 0.5) / dims[0] - center01[0];
          const double y = (j + 0.5) / dims[1] - center01[1];
          const double z = (k + 0.5) / dims[2] - center01[2];
          if (x * x + y * y + z * z < frac * frac) flags.push_back({i, j, k});
        }
  };
}
}  // namespace

TEST(Hierarchy, RebuildCreatesNestedLevels) {
  HierarchyParams p;
  p.root_dims = {16, 16, 16};
  p.max_level = 3;
  Hierarchy h(p);
  h.build_root();
  for (Grid* g : h.grids(0)) {
    g->field(Field::kDensity).fill(1.0);
    g->field(Field::kTotalEnergy).fill(1.0);
    g->field(Field::kInternalEnergy).fill(1.0);
    g->field(Field::kVelocityX).fill(0.0);
    g->field(Field::kVelocityY).fill(0.0);
    g->field(Field::kVelocityZ).fill(0.0);
    g->store_old_fields();
  }
  h.rebuild(1, sphere_flagger({0.5, 0.5, 0.5}, 0.2));
  EXPECT_GE(h.deepest_level(), 1);
  EXPECT_GT(h.num_grids(1), 0u);
  h.check_invariants();
  // Interpolated data on children preserves the constant state.
  for (Grid* g : h.grids(1)) {
    EXPECT_DOUBLE_EQ(g->field(Field::kDensity)(g->sx(0), g->sy(0), g->sz(0)),
                     1.0);
    EXPECT_EQ(g->parent()->level(), 0);
  }
}

TEST(Hierarchy, RebuildRemovesLevelsWhenFlagsVanish) {
  HierarchyParams p;
  p.root_dims = {16, 16, 16};
  p.max_level = 2;
  Hierarchy h(p);
  h.build_root();
  for (Grid* g : h.grids(0)) {
    for (Field f : g->field_list()) g->field(f).fill(1.0);
    g->store_old_fields();
  }
  h.rebuild(1, sphere_flagger({0.5, 0.5, 0.5}, 0.15));
  const int deepest = h.deepest_level();
  EXPECT_GE(deepest, 1);
  // Rebuild with nothing flagged: the nesting guarantee makes derefinement
  // cascade one level per rebuild (a level-l grid keeps its footprint
  // refined until its own children are gone), so after `deepest` rebuilds
  // everything has collapsed back to the root.
  for (int i = 0; i < deepest; ++i)
    h.rebuild(1, [](const Grid&, std::vector<Index3>&) {});
  EXPECT_EQ(h.deepest_level(), 0);
  h.check_invariants();
}

TEST(Hierarchy, ParticlesMigrateOnRebuild) {
  HierarchyParams p;
  p.root_dims = {16, 16, 16};
  p.max_level = 1;
  Hierarchy h(p);
  h.build_root();
  Grid* root = h.grids(0)[0];
  for (Field f : root->field_list()) root->field(f).fill(1.0);
  root->store_old_fields();
  // One particle in the future-refined center, one near the corner.
  Particle in_center;
  in_center.x = {ext::pos_t(0.5), ext::pos_t(0.5), ext::pos_t(0.5)};
  in_center.mass = 1.0;
  in_center.id = 1;
  Particle in_corner;
  in_corner.x = {ext::pos_t(0.05), ext::pos_t(0.05), ext::pos_t(0.05)};
  in_corner.mass = 1.0;
  in_corner.id = 2;
  std::vector<Particle> seed_particles{in_center, in_corner};
  root->particles().swap(seed_particles);
  h.rebuild(1, sphere_flagger({0.5, 0.5, 0.5}, 0.12));
  ASSERT_GE(h.num_grids(1), 1u);
  std::size_t fine_particles = 0;
  for (Grid* g : h.grids(1)) fine_particles += g->particles().size();
  EXPECT_EQ(fine_particles, 1u);
  EXPECT_EQ(root->particles().size(), 1u);
  EXPECT_EQ(root->particles()[0].id, 2u);
  h.check_invariants();
  // Un-refine: the particle returns to the root.
  h.rebuild(1, [](const Grid&, std::vector<Index3>&) {});
  EXPECT_EQ(root->particles().size(), 2u);
}

TEST(Hierarchy, RebuildRootLevelRejected) {
  HierarchyParams p;
  Hierarchy h(p);
  h.build_root();
  EXPECT_THROW(h.rebuild(0, [](const Grid&, std::vector<Index3>&) {}),
               enzo::Error);
}

TEST(Hierarchy, WorkPerLevelWeightsTimesteps) {
  HierarchyParams p;
  p.root_dims = {8, 8, 8};
  p.max_level = 1;
  Hierarchy h(p);
  h.build_root();
  for (Grid* g : h.grids(0)) {
    for (Field f : g->field_list()) g->field(f).fill(1.0);
    g->store_old_fields();
  }
  h.rebuild(1, sphere_flagger({0.5, 0.5, 0.5}, 0.3));
  auto work = h.work_per_level();
  ASSERT_EQ(work.size(), 2u);
  std::int64_t fine_cells = 0;
  for (const Grid* g : std::as_const(h).grids(1)) fine_cells += g->box().volume();
  EXPECT_DOUBLE_EQ(work[0], 512.0);
  EXPECT_DOUBLE_EQ(work[1], 2.0 * fine_cells);
}

// ---- boundary fill -------------------------------------------------------------

TEST(Boundary, PeriodicRootWrapsItself) {
  HierarchyParams p;
  p.root_dims = {8, 8, 8};
  Hierarchy h(p);
  h.build_root();
  Grid* g = h.grids(0)[0];
  const auto rho = g->field(Field::kDensity);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i)
        rho(g->sx(i), g->sy(j), g->sz(k)) = 100 * i + 10 * j + k;
  set_boundary_values(h, 0);
  // Ghost at active i=-1 should equal active i=7.
  EXPECT_DOUBLE_EQ(rho(g->sx(-1), g->sy(2), g->sz(3)),
                   rho(g->sx(7), g->sy(2), g->sz(3)));
  EXPECT_DOUBLE_EQ(rho(g->sx(8), g->sy(0), g->sz(0)),
                   rho(g->sx(0), g->sy(0), g->sz(0)));
  // Corner ghost wraps in all axes.
  EXPECT_DOUBLE_EQ(rho(g->sx(-1), g->sy(-1), g->sz(-1)),
                   rho(g->sx(7), g->sy(7), g->sz(7)));
}

TEST(Boundary, OutflowRootReplicatesEdges) {
  HierarchyParams p;
  p.root_dims = {8, 8, 8};
  p.periodic = false;
  Hierarchy h(p);
  h.build_root();
  Grid* g = h.grids(0)[0];
  const auto rho = g->field(Field::kDensity);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i) rho(g->sx(i), g->sy(j), g->sz(k)) = 1.0 + i;
  set_boundary_values(h, 0);
  EXPECT_DOUBLE_EQ(rho(g->sx(-1), g->sy(3), g->sz(3)), 1.0);
  EXPECT_DOUBLE_EQ(rho(g->sx(-3), g->sy(3), g->sz(3)), 1.0);
  EXPECT_DOUBLE_EQ(rho(g->sx(9), g->sy(3), g->sz(3)), 8.0);
}

TEST(Boundary, TiledRootExchangesSiblingData) {
  HierarchyParams p;
  p.root_dims = {8, 8, 8};
  Hierarchy h(p);
  h.build_root(2);  // 8 tiles of 4³
  for (Grid* g : h.grids(0)) {
    const auto rho = g->field(Field::kDensity);
    for (int k = 0; k < 4; ++k)
      for (int j = 0; j < 4; ++j)
        for (int i = 0; i < 4; ++i) {
          const auto b = g->box();
          rho(g->sx(i), g->sy(j), g->sz(k)) =
              100 * (b.lo[0] + i) + 10 * (b.lo[1] + j) + (b.lo[2] + k);
        }
  }
  set_boundary_values(h, 0);
  // Every tile's ghosts now hold the correct global function value.
  for (Grid* g : h.grids(0)) {
    const auto rho = g->field(Field::kDensity);
    for (int off : {-2, -1, 4, 5}) {
      const std::int64_t gi = ((g->box().lo[0] + off) % 8 + 8) % 8;
      EXPECT_DOUBLE_EQ(rho(g->sx(off), g->sy(1), g->sz(1)),
                       100.0 * gi + 10 * (g->box().lo[1] + 1) +
                           (g->box().lo[2] + 1))
          << g->box().str();
    }
  }
}

TEST(Boundary, SubgridGetsParentThenSiblingData) {
  HierarchyParams p;
  p.root_dims = {16, 16, 16};
  p.max_level = 1;
  Hierarchy h(p);
  h.build_root();
  Grid* root = h.grids(0)[0];
  for (Field f : root->field_list()) root->field(f).fill(2.0);
  root->store_old_fields();
  // Two adjacent children sharing a face at global fine x=16.
  auto s1 = std::make_unique<Grid>(
      h.make_spec(1, {{8, 8, 8}, {16, 24, 24}}), p.fields);
  auto s2 = std::make_unique<Grid>(
      h.make_spec(1, {{16, 8, 8}, {24, 24, 24}}), p.fields);
  s1->set_parent(root);
  s2->set_parent(root);
  s1->field(Field::kDensity).fill(5.0);
  s2->field(Field::kDensity).fill(9.0);
  Grid* g1 = h.insert_grid(std::move(s1));
  Grid* g2 = h.insert_grid(std::move(s2));
  set_boundary_values(h, 1);
  // g2's low-x ghosts must hold g1's (finer) 5.0, not the parent's 2.0.
  EXPECT_DOUBLE_EQ(g2->field(Field::kDensity)(g2->sx(-1), g2->sy(2), g2->sz(2)),
                   5.0);
  // g2's high-x ghosts see only the parent: 2.0.
  EXPECT_DOUBLE_EQ(g2->field(Field::kDensity)(g2->sx(8), g2->sy(2), g2->sz(2)),
                   2.0);
  // g1's high-x ghosts hold g2's 9.0.
  EXPECT_DOUBLE_EQ(g1->field(Field::kDensity)(g1->sx(8), g1->sy(2), g1->sz(2)),
                   9.0);
}

// ---- Overlap topology --------------------------------------------------------

namespace {

/// A hierarchy with randomized (aligned, possibly touching) level-1 boxes —
/// the link-equivalence checks compare two enumeration strategies, so the
/// boxes need not form a physically valid refinement pattern.
Hierarchy make_random_hierarchy(std::uint64_t seed, Index3 root_dims,
                                bool periodic, int root_tiles) {
  enzo::util::Rng rng(seed);
  HierarchyParams p;
  p.root_dims = root_dims;
  p.periodic = periodic;
  p.max_level = 2;
  Hierarchy h(p);
  h.build_root(root_tiles);
  const auto roots = h.grids(0);
  const Index3 dims1 = h.level_dims(1);
  const int n1 = 2 + static_cast<int>(rng.uniform(0, 4));
  for (int i = 0; i < n1; ++i) {
    IndexBox box;
    for (int d = 0; d < 3; ++d) {
      if (dims1[d] == 1) {
        box.lo[d] = 0;
        box.hi[d] = 1;
        continue;
      }
      const std::int64_t half = dims1[d] / 2;
      const auto lo = static_cast<std::int64_t>(rng.uniform(0, static_cast<double>(half - 2)));
      const auto ext = 1 + static_cast<std::int64_t>(rng.uniform(0, 3));
      box.lo[d] = 2 * lo;
      box.hi[d] = std::min<std::int64_t>(2 * (lo + ext), dims1[d]);
    }
    auto g = std::make_unique<Grid>(h.make_spec(1, box), p.fields);
    const Index3 pc{box.lo[0] / 2, box.lo[1] / 2, box.lo[2] / 2};
    Grid* parent = nullptr;
    for (Grid* r : roots)
      if (r->box().contains(pc)) {
        parent = r;
        break;
      }
    g->set_parent(parent);
    h.insert_grid(std::move(g));
  }
  return h;
}

}  // namespace

TEST(Topology, PeriodicImageShiftEnumeration) {
  const auto s = periodic_image_shifts({8, 1, 4}, true);
  EXPECT_EQ(s[0], (std::vector<std::int64_t>{0, 8, -8}));
  EXPECT_EQ(s[1], (std::vector<std::int64_t>{0}));  // degenerate axis: no wrap
  EXPECT_EQ(s[2], (std::vector<std::int64_t>{0, 4, -4}));
  const auto n = periodic_image_shifts({8, 8, 8}, false);
  for (int d = 0; d < 3; ++d)
    EXPECT_EQ(n[d], (std::vector<std::int64_t>{0}));
}

TEST(Topology, SiblingLinksMatchAllPairsReference) {
  struct Case {
    std::uint64_t seed;
    Index3 dims;
    bool periodic;
    int tiles;
  };
  const Case cases[] = {{1, {16, 16, 16}, true, 2},
                        {2, {16, 16, 16}, false, 2},
                        {3, {32, 32, 1}, true, 1},
                        {4, {16, 16, 16}, true, 1},
                        {5, {8, 16, 32}, true, 2}};
  for (const Case& c : cases) {
    Hierarchy h = make_random_hierarchy(c.seed, c.dims, c.periodic, c.tiles);
    const OverlapTopology& topo = h.topology();
    EXPECT_EQ(topo.generation(), h.generation());
    for (int l = 0; l <= h.deepest_level(); ++l) {
      const auto lv = h.grids(l);
      ASSERT_EQ(topo.level_grids(l).size(), lv.size());
      const Index3 dims = h.level_dims(l);
      const auto shifts = periodic_image_shifts(dims, c.periodic);
      for (std::size_t i = 0; i < lv.size(); ++i) {
        const Grid* g = lv[i];
        IndexBox ghost = g->box(), wide = g->box();
        for (int d = 0; d < 3; ++d) {
          const std::int64_t ng = g->ng(d);
          const std::int64_t w =
              std::max<std::int64_t>(ng, dims[d] > 1 ? 1 : 0);
          ghost.lo[d] -= ng;
          ghost.hi[d] += ng;
          wide.lo[d] -= w;
          wide.hi[d] += w;
        }
        // Fresh all-pairs reference enumeration, in the canonical order.
        std::vector<SiblingLink> ref;
        for (std::size_t j = 0; j < lv.size(); ++j)
          for (std::int64_t kz : shifts[2])
            for (std::int64_t ky : shifts[1])
              for (std::int64_t kx : shifts[0]) {
                if (j == i && kx == 0 && ky == 0 && kz == 0) continue;
                const IndexBox sb = lv[j]->box().shifted({kx, ky, kz});
                if (wide.intersect(sb).empty()) continue;
                ref.push_back({static_cast<std::uint32_t>(j),
                               {kx, ky, kz},
                               ghost.intersect(sb)});
              }
        const auto range = topo.siblings(l, i);
        ASSERT_EQ(range.size(), ref.size())
            << "seed " << c.seed << " level " << l << " grid " << i;
        std::size_t k = 0;
        for (const SiblingLink& ln : range) {
          EXPECT_EQ(ln.src, ref[k].src);
          EXPECT_EQ(ln.shift, ref[k].shift);
          EXPECT_EQ(ln.overlap, ref[k].overlap);
          ++k;
        }
      }
    }
  }
}

TEST(Topology, ChildrenByParentMatchesFindIfGrouping) {
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    Hierarchy h = make_random_hierarchy(seed, {16, 16, 16}, true, 2);
    const OverlapTopology& topo = h.topology();
    const auto children = h.grids(1);
    std::vector<std::pair<const Grid*, std::vector<const Grid*>>> ref;
    for (const Grid* c : children) {
      auto it = std::find_if(ref.begin(), ref.end(), [&](const auto& gp) {
        return gp.first == c->parent();
      });
      if (it == ref.end())
        ref.push_back({c->parent(), {c}});
      else
        it->second.push_back(c);
    }
    const auto& groups = topo.children_by_parent(1);
    ASSERT_EQ(groups.size(), ref.size());
    for (std::size_t n = 0; n < groups.size(); ++n) {
      EXPECT_EQ(groups[n].first, ref[n].first);
      ASSERT_EQ(groups[n].second.size(), ref[n].second.size());
      for (std::size_t k = 0; k < ref[n].second.size(); ++k)
        EXPECT_EQ(groups[n].second[k], ref[n].second[k]);
    }
    EXPECT_TRUE(topo.children_by_parent(0).empty());
  }
}

TEST(Topology, PointQueriesMatchLinearScans) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    Hierarchy h = make_random_hierarchy(seed, {16, 16, 16}, true, 2);
    const OverlapTopology& topo = h.topology();
    enzo::util::Rng rng(seed * 100 + 1);
    // grid_at vs first-containing linear scan on integer indices.
    for (int l = 0; l <= h.deepest_level(); ++l) {
      const auto lv = h.grids(l);
      const Index3 dims = h.level_dims(l);
      for (int trial = 0; trial < 200; ++trial) {
        Index3 p;
        for (int d = 0; d < 3; ++d)
          p[d] = static_cast<std::int64_t>(
              rng.uniform(0, static_cast<double>(dims[d])));
        const Grid* expect = nullptr;
        for (const Grid* g : lv)
          if (g->box().contains(p)) {
            expect = g;
            break;
          }
        EXPECT_EQ(topo.grid_at(l, p), expect);
      }
    }
    // finest_owner vs deepest-first scan on positions.
    for (int trial = 0; trial < 200; ++trial) {
      ext::PosVec x;
      for (int d = 0; d < 3; ++d) x[d] = ext::pos_t(rng.uniform());
      const Grid* expect = nullptr;
      for (int l = h.deepest_level(); l >= 0 && !expect; --l)
        for (Grid* g : h.grids(l))
          if (g->contains_position(x)) {
            expect = g;
            break;
          }
      EXPECT_EQ(topo.finest_owner(x), expect);
    }
  }
}

TEST(Topology, GenerationInvalidationAndLazyRebuild) {
  HierarchyParams p;
  p.root_dims = {16, 16, 16};
  Hierarchy h(p);
  EXPECT_FALSE(h.topology_cache_generation().has_value());
  h.build_root(2);
  const OverlapTopology& t1 = h.topology();
  EXPECT_EQ(t1.generation(), h.generation());
  ASSERT_TRUE(h.topology_cache_generation().has_value());
  EXPECT_EQ(*h.topology_cache_generation(), h.generation());
  // Repeated queries hit the same cache (no rebuild).
  EXPECT_EQ(&h.topology(), &t1);
  // A structure mutation leaves the cache stale until the next query.
  auto g = std::make_unique<Grid>(h.make_spec(1, {{8, 8, 8}, {16, 16, 16}}),
                                  p.fields);
  g->set_parent(h.grids(0)[0]);
  h.insert_grid(std::move(g));
  ASSERT_TRUE(h.topology_cache_generation().has_value());
  EXPECT_NE(*h.topology_cache_generation(), h.generation());
  const OverlapTopology& t2 = h.topology();
  EXPECT_EQ(t2.generation(), h.generation());
  EXPECT_EQ(*h.topology_cache_generation(), h.generation());
  EXPECT_EQ(t2.level_grids(1).size(), 1u);
}

TEST(Topology, BoundaryFillMatchesAllPairsBitwise) {
  // Two identically constructed hierarchies, one filled through the cached
  // links and one through the all-pairs reference path: every field byte
  // must match (the PR-3 determinism contract).
  auto build_and_fill = [](bool cached) {
    Hierarchy h = make_random_hierarchy(42, {16, 16, 16}, true, 2);
    h.set_use_topology(cached);
    enzo::util::Rng rng(77);
    for (int l = 0; l <= h.deepest_level(); ++l)
      for (Grid* g : h.grids(l))
        for (Field f : g->field_list())
          for (double& v : g->field(f)) v = rng.uniform(0.5, 2.0);
    for (int l = 0; l <= h.deepest_level(); ++l) {
      for (Grid* g : h.grids(l)) g->store_old_fields();
      set_boundary_values(h, l);
    }
    std::vector<double> bytes;
    for (int l = 0; l <= h.deepest_level(); ++l)
      for (const Grid* g : h.grids(l))
        for (Field f : g->field_list())
          for (const double v : g->field(f)) bytes.push_back(v);
    return bytes;
  };
  const auto with_cache = build_and_fill(true);
  const auto reference = build_and_fill(false);
  ASSERT_EQ(with_cache.size(), reference.size());
  for (std::size_t n = 0; n < reference.size(); ++n) {
    ASSERT_EQ(with_cache[n], reference[n]) << "field byte " << n << " differs";
  }
}
