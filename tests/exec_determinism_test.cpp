// End-to-end determinism of the parallel level-execution engine: the
// cosmology_box deck run on the serial backend and on an 8-lane thread pool
// must produce byte-identical per-step diagnostics and identical audit
// conservation sums.  This is the contract the executor's ordered phases
// and reduce_ordered combining exist to keep.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/auditor.hpp"
#include "core/parameter_file.hpp"
#include "core/simulation.hpp"
#include "exec/exec_config.hpp"
#include "mesh/topology.hpp"
#include "perf/diagnostics.hpp"

using namespace enzo;

namespace {

constexpr int kSteps = 2;

struct RunResult {
  std::vector<std::string> records;  // normalized JSONL lines
  double audit_mass = 0.0;
  double audit_energy = 0.0;
  std::size_t audit_violations = 0;
};

// Re-serialize each record with the machine/process-dependent fields zeroed:
// wall_seconds is timing, peak_bytes and flops read process-global counters
// that accumulate across the two runs sharing this test binary.  Everything
// physical (t, dt + limiter, z, level populations, conservation sums and
// residuals) must match to the last bit.
std::vector<std::string> normalized_records(const std::string& path) {
  std::vector<std::string> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    perf::StepRecord rec;
    EXPECT_TRUE(perf::parse_step_record(line, &rec)) << "bad record: " << line;
    rec.wall_seconds = 0.0;
    rec.peak_bytes = 0;
    rec.flops = 0;
    out.push_back(perf::step_record_json(rec));
  }
  return out;
}

using DeckHook = std::function<void(core::ParameterDeck&)>;

RunResult run_cosmology_box(exec::Backend backend, int threads,
                            const std::string& diag_path,
                            const DeckHook& tweak = {}) {
  const std::string deck_path =
      std::string(ENZO_SOURCE_DIR) + "/decks/cosmology_box.enzo";
  core::ParameterDeck deck = core::parse_parameter_file(deck_path);
  deck.config.exec.backend = backend;
  deck.config.exec.threads = threads;
  if (tweak) tweak(deck);
  core::Simulation sim(deck.config);
  core::setup_from_deck(sim, deck);
  {
    perf::DiagnosticsSink sink(diag_path);
    EXPECT_TRUE(sink.ok()) << "cannot open " << diag_path;
    sim.set_diagnostics_sink(&sink);
    for (int s = 0; s < kSteps; ++s) sim.advance_root_step();
    sim.set_diagnostics_sink(nullptr);
  }
  const analysis::AuditReport& rep = sim.run_audit();
  RunResult r;
  r.records = normalized_records(diag_path);
  r.audit_mass = rep.mass_total;
  r.audit_energy = rep.energy_total;
  r.audit_violations = rep.total_violations;
  std::remove(diag_path.c_str());
  return r;
}

}  // namespace

TEST(ExecDeterminismTest, SerialAndThreadPool8AreByteIdentical) {
  const std::string dir = ::testing::TempDir();
  const RunResult serial = run_cosmology_box(exec::Backend::kSerial, 1,
                                             dir + "exec_det_serial.jsonl");
  const RunResult pool = run_cosmology_box(exec::Backend::kThreadPool, 8,
                                           dir + "exec_det_pool.jsonl");

  ASSERT_EQ(serial.records.size(), static_cast<std::size_t>(kSteps));
  ASSERT_EQ(pool.records.size(), serial.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i)
    EXPECT_EQ(serial.records[i], pool.records[i]) << "step " << i;

  // Audit conservation sums are serial root-level reductions in both runs;
  // they must agree bitwise, and neither run may violate an AMR invariant.
  EXPECT_EQ(serial.audit_mass, pool.audit_mass);
  EXPECT_EQ(serial.audit_energy, pool.audit_energy);
  EXPECT_EQ(serial.audit_violations, 0u);
  EXPECT_EQ(pool.audit_violations, 0u);
}

TEST(ExecDeterminismTest, ThreadPoolIsRepeatable) {
  const std::string dir = ::testing::TempDir();
  const RunResult a = run_cosmology_box(exec::Backend::kThreadPool, 8,
                                        dir + "exec_det_rep_a.jsonl");
  const RunResult b = run_cosmology_box(exec::Backend::kThreadPool, 8,
                                        dir + "exec_det_rep_b.jsonl");
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i)
    EXPECT_EQ(a.records[i], b.records[i]) << "step " << i;
  EXPECT_EQ(a.audit_mass, b.audit_mass);
  EXPECT_EQ(a.audit_energy, b.audit_energy);
}

// The cached overlap topology must be invisible to the physics: routing the
// sibling/potential/particle sweeps through the regrid-cached neighbor lists
// has to reproduce the all-pairs scan paths byte for byte, serially and on
// the 8-lane pool.
TEST(ExecDeterminismTest, TopologyCacheIsByteIdenticalToAllPairs) {
  const std::string dir = ::testing::TempDir();
  struct Config {
    bool cached;
    exec::Backend backend;
    int threads;
    const char* tag;
  };
  const Config configs[] = {
      {false, exec::Backend::kSerial, 1, "ref_serial"},
      {true, exec::Backend::kSerial, 1, "topo_serial"},
      {true, exec::Backend::kThreadPool, 8, "topo_pool"},
  };
  std::vector<RunResult> results;
  for (const Config& c : configs) {
    results.push_back(run_cosmology_box(
        c.backend, c.threads, dir + "exec_det_" + c.tag + ".jsonl",
        [&](core::ParameterDeck& deck) {
          deck.config.hierarchy.use_overlap_topology = c.cached;
        }));
  }
  const RunResult& ref = results[0];
  ASSERT_EQ(ref.records.size(), static_cast<std::size_t>(kSteps));
  for (std::size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(results[r].records.size(), ref.records.size())
        << configs[r].tag;
    for (std::size_t i = 0; i < ref.records.size(); ++i)
      EXPECT_EQ(results[r].records[i], ref.records[i])
          << configs[r].tag << " step " << i;
    EXPECT_EQ(results[r].audit_mass, ref.audit_mass) << configs[r].tag;
    EXPECT_EQ(results[r].audit_energy, ref.audit_energy) << configs[r].tag;
    EXPECT_EQ(results[r].audit_violations, 0u) << configs[r].tag;
  }
  EXPECT_EQ(ref.audit_violations, 0u);
}

// The storage arena and the incremental regrid must likewise be invisible to
// the physics: pooled blocks, recycled particle vectors and kept-alive
// subtrees have to reproduce the arena-off full-rebuild run byte for byte.
// (Grid ids may differ — kept grids keep theirs — but ids are not part of
// any diagnostic record or audit sum.)
TEST(ExecDeterminismTest, ArenaAndIncrementalRegridAreByteIdentical) {
  const std::string dir = ::testing::TempDir();
  struct Config {
    bool pool;
    bool incremental;
    const char* tag;
  };
  const Config configs[] = {
      {false, false, "heap_full"},    // reference: plain heap, full rebuild
      {true, false, "arena_full"},    // pooled storage, full rebuild
      {false, true, "heap_incr"},     // heap storage, incremental diff
      {true, true, "arena_incr"},     // production configuration
  };
  std::vector<RunResult> results;
  for (const Config& c : configs) {
    results.push_back(run_cosmology_box(
        exec::Backend::kThreadPool, 8, dir + "exec_det_" + c.tag + ".jsonl",
        [&](core::ParameterDeck& deck) {
          deck.config.hierarchy.arena.pool = c.pool;
          deck.config.hierarchy.arena.incremental = c.incremental;
        }));
  }
  const RunResult& ref = results[0];
  ASSERT_EQ(ref.records.size(), static_cast<std::size_t>(kSteps));
  for (std::size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(results[r].records.size(), ref.records.size())
        << configs[r].tag;
    for (std::size_t i = 0; i < ref.records.size(); ++i)
      EXPECT_EQ(results[r].records[i], ref.records[i])
          << configs[r].tag << " step " << i;
    EXPECT_EQ(results[r].audit_mass, ref.audit_mass) << configs[r].tag;
    EXPECT_EQ(results[r].audit_energy, ref.audit_energy) << configs[r].tag;
    EXPECT_EQ(results[r].audit_violations, 0u) << configs[r].tag;
  }
  EXPECT_EQ(ref.audit_violations, 0u);
}
