// Chemistry tests: rate-coefficient sanity, conservation (nuclei & charge),
// recombination against the analytic decay, collisional ionization
// equilibrium, H₂ formation in the low- and high-density (three-body)
// regimes, cooling behaviour including the Compton–CMB coupling, and solver
// robustness under stiff conditions.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "chemistry/chemistry.hpp"
#include "chemistry/rates.hpp"
#include "mesh/hierarchy.hpp"
#include "util/constants.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;
namespace cn = enzo::constants;

namespace {

/// Units where code density 1 = n_H of `n_cgs` cm⁻³ and code specific
/// energy is in units of k_B K per m_H (so e ≈ T/((γ−1)μ)).
chemistry::ChemUnits make_units(double n_cgs) {
  chemistry::ChemUnits u;
  u.n_factor = n_cgs;
  u.rho_cgs = n_cgs * cn::kHydrogenMass;
  u.e_cgs = cn::kBoltzmann / cn::kHydrogenMass;
  u.time_s = 1.0;  // code time in seconds
  u.t_cmb = 2.725;
  return u;
}

/// One-grid box with uniform density rho0 and the full chemistry field set.
mesh::Hierarchy chem_box(double rho0) {
  mesh::HierarchyParams p;
  p.root_dims = {4, 4, 4};
  p.fields = mesh::chemistry_field_list();
  mesh::Hierarchy h(p);
  h.build_root();
  Grid* g = h.grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(0.0);
  g->field(Field::kDensity).fill(rho0);
  return h;
}

/// Set the internal energy so the cell temperature is T for its current μ.
void set_temperature(Grid& g, double T, const chemistry::ChemistryParams& prm) {
  for (int k = 0; k < g.nt(2); ++k)
    for (int j = 0; j < g.nt(1); ++j)
      for (int i = 0; i < g.nt(0); ++i) {
        const double mu = chemistry::cell_mu(g, i, j, k);
        const double e = T / ((prm.gamma - 1.0) * mu);  // e_cgs = k/m_H units
        g.field(Field::kInternalEnergy)(i, j, k) = e;
        g.field(Field::kTotalEnergy)(i, j, k) = e;
      }
}

double h_nuclei(const Grid& g, int si, int sj, int sk) {
  return g.field(Field::kHI)(si, sj, sk) + g.field(Field::kHII)(si, sj, sk) +
         g.field(Field::kHM)(si, sj, sk) + g.field(Field::kH2I)(si, sj, sk) +
         g.field(Field::kH2II)(si, sj, sk) +
         g.field(Field::kHDI)(si, sj, sk) / 3.0;
}

}  // namespace

// ---- rates -----------------------------------------------------------------------

TEST(Rates, PositivityAcrossTemperatureSweep) {
  for (double T = 1.0; T < 1e8; T *= 2.7) {
    const auto r = chemistry::compute_rates(T);
    for (double k : {r.k1, r.k2, r.k3, r.k4, r.k5, r.k6, r.k7, r.k8, r.k9,
                     r.k10, r.k11, r.k12, r.k13, r.k14, r.k15, r.k16, r.k17,
                     r.k18, r.k19, r.k22, r.k50, r.k51, r.k52, r.k53, r.k54,
                     r.k55, r.k56, r.k57}) {
      EXPECT_TRUE(std::isfinite(k)) << "T=" << T;
      EXPECT_GE(k, 0.0) << "T=" << T;
    }
  }
}

TEST(Rates, IonizationNeedsHighTemperature) {
  const auto cold = chemistry::compute_rates(1e3);
  const auto hot = chemistry::compute_rates(1e5);
  EXPECT_LT(cold.k1, 1e-20);           // negligible at 10³ K
  EXPECT_GT(hot.k1, 1e-9);             // strong at 10⁵ K
  EXPECT_GT(cold.k2, hot.k2);          // recombination favours cold gas
}

TEST(Rates, ThreeBodyScalesInverseT) {
  const auto a = chemistry::compute_rates(100.0);
  const auto b = chemistry::compute_rates(1000.0);
  EXPECT_NEAR(a.k22 / b.k22, 10.0, 1e-9);
  EXPECT_NEAR(a.k22, 5.5e-31, 1e-33);
}

TEST(Rates, H2CoolingPeaksNearFewThousandK) {
  const double n = 1.0;
  const double lo = chemistry::h2_cooling_rate(100, n, n);
  const double mid = chemistry::h2_cooling_rate(3000, n, n);
  EXPECT_GT(mid, lo * 10);
  // LTE cap: at n >> n_cr the per-molecule rate saturates (Λ/n_H2 stops
  // growing linearly with n_H).
  const double per_mol_low = chemistry::h2_cooling_rate(1000, 1.0, 1e2);
  const double per_mol_high = chemistry::h2_cooling_rate(1000, 1.0, 1e8);
  EXPECT_LT(per_mol_high / per_mol_low, 1e6 / 1e2);  // sublinear growth
}

TEST(Rates, ComptonChangesSignAtCmbTemperature) {
  chemistry::CoolingInput ci{};
  ci.n_e = 1.0;
  ci.T_cmb = 50.0;
  ci.T = 100.0;  // hotter than CMB: cooling
  ci.n_HI = 1.0;
  EXPECT_GT(chemistry::cooling_rate(ci), 0.0);
  ci.T = 20.0;  // colder than CMB: Compton heating
  EXPECT_LT(chemistry::cooling_rate(ci), 0.0);
}

// ---- composition initialization -----------------------------------------------

TEST(Chemistry, InitialCompositionSumsToDensity) {
  mesh::Hierarchy h = chem_box(1.0);
  Grid* g = h.grids(0)[0];
  chemistry::ChemistryParams prm;
  chemistry::initialize_primordial_composition(*g, prm, 1e-4, 1e-6);
  const int si = g->sx(1), sj = g->sy(1), sk = g->sz(1);
  EXPECT_NEAR(h_nuclei(*g, si, sj, sk) +
                  g->field(Field::kHDI)(si, sj, sk) * (1.0 - 1.0 / 3.0) +
                  g->field(Field::kDI)(si, sj, sk) +
                  g->field(Field::kDII)(si, sj, sk) +
                  g->field(Field::kHeI)(si, sj, sk) +
                  g->field(Field::kHeII)(si, sj, sk) +
                  g->field(Field::kHeIII)(si, sj, sk),
              1.0, 1e-3);
  // Neutral primordial gas: μ ≈ 1/(X + Y/4) ≈ 1.22.
  EXPECT_NEAR(chemistry::cell_mu(*g, si, sj, sk), 1.22, 0.02);
}

// ---- conservation ----------------------------------------------------------------

TEST(Chemistry, ConservesNucleiAndCharge) {
  mesh::Hierarchy h = chem_box(1.0);
  Grid* g = h.grids(0)[0];
  chemistry::ChemistryParams prm;
  prm.cooling = false;
  chemistry::initialize_primordial_composition(*g, prm, 0.1, 1e-4);
  set_temperature(*g, 5000.0, prm);
  auto u = make_units(10.0);
  const int si = g->sx(2), sj = g->sy(2), sk = g->sz(2);
  const double h0 = h_nuclei(*g, si, sj, sk);
  chemistry::solve_chemistry_step(*g, 3.15e13, prm, u);  // ~1 Myr
  EXPECT_NEAR(h_nuclei(*g, si, sj, sk), h0, 1e-8 * h0);
  // Charge: n_e = n_HII + n_HeII + 2n_HeIII + n_DII + n_H2II − n_HM.
  const double ne = g->field(Field::kElectron)(si, sj, sk);
  const double charge = g->field(Field::kHII)(si, sj, sk) +
                        g->field(Field::kHeII)(si, sj, sk) / 4.0 +
                        2.0 * g->field(Field::kHeIII)(si, sj, sk) / 4.0 +
                        g->field(Field::kDII)(si, sj, sk) / 2.0 +
                        g->field(Field::kH2II)(si, sj, sk) / 2.0 -
                        g->field(Field::kHM)(si, sj, sk);
  EXPECT_NEAR(ne, charge, 1e-6 * ne + 1e-20);
}

// ---- recombination / ionization -------------------------------------------------

TEST(Chemistry, RecombinationFollowsAnalyticDecay) {
  // Fully ionized pure-H-like gas at fixed T (cooling off): pure two-body
  // recombination gives 1/n_e(t) = 1/n_e(0) + k2 t.
  mesh::Hierarchy h = chem_box(1.0);
  Grid* g = h.grids(0)[0];
  chemistry::ChemistryParams prm;
  prm.cooling = false;
  prm.hydrogen_fraction = 1.0;  // suppress He for the clean comparison
  chemistry::initialize_primordial_composition(*g, prm, 0.9999, 0.0);
  const double T = 1000.0;
  auto u = make_units(1.0);  // n_H = 1 cm⁻³
  const auto r = chemistry::compute_rates(T);
  const double t = 3.0e13;  // s
  // Re-pin the temperature as μ drifts from 0.5 (ionized) toward 1
  // (neutral), so k2 stays at its T=1000 K value.
  for (int it = 0; it < 20; ++it) {
    set_temperature(*g, T, prm);
    chemistry::solve_chemistry_step(*g, t / 20, prm, u);
  }
  const int si = g->sx(1), sj = g->sy(1), sk = g->sz(1);
  const double ne = g->field(Field::kElectron)(si, sj, sk);  // ≈ n_e (code)
  const double expected = 1.0 / (1.0 / 0.9999 + r.k2 * t);
  EXPECT_NEAR(ne, expected, 0.05 * expected);
}

TEST(Chemistry, CollisionalIonizationEquilibrium) {
  // At fixed high T the H ionization fraction relaxes to k1/(k1+k2).
  mesh::Hierarchy h = chem_box(1.0);
  Grid* g = h.grids(0)[0];
  chemistry::ChemistryParams prm;
  prm.cooling = false;
  prm.hydrogen_fraction = 1.0;
  chemistry::initialize_primordial_composition(*g, prm, 0.5, 0.0);
  const double T = 2.0e4;
  auto u = make_units(1e2);
  // Re-pin the temperature every step (the network changes μ slightly).
  const auto r = chemistry::compute_rates(T);
  for (int it = 0; it < 30; ++it) {
    set_temperature(*g, T, prm);
    chemistry::solve_chemistry_step(*g, 1e13, prm, u);
  }
  const int si = g->sx(1), sj = g->sy(1), sk = g->sz(1);
  const double x = g->field(Field::kHII)(si, sj, sk) /
                   (g->field(Field::kHII)(si, sj, sk) +
                    g->field(Field::kHI)(si, sj, sk));
  EXPECT_NEAR(x, r.k1 / (r.k1 + r.k2), 0.05);
}

// ---- H2 formation -----------------------------------------------------------------

TEST(Chemistry, H2FormsViaHMinusChannel) {
  // Warm slightly-ionized gas at n ~ 10 cm⁻³: the H⁻ channel should build
  // an H₂ fraction of order 10⁻⁴…10⁻³ over ~10 Myr (§4: "minute molecular
  // mass fraction of ~10⁻³").
  mesh::Hierarchy h = chem_box(1.0);
  Grid* g = h.grids(0)[0];
  chemistry::ChemistryParams prm;
  prm.cooling = false;
  chemistry::initialize_primordial_composition(*g, prm, 1e-3, 1e-9);
  set_temperature(*g, 1000.0, prm);
  auto u = make_units(10.0);
  const int si = g->sx(1), sj = g->sy(1), sk = g->sz(1);
  const double f0 = g->field(Field::kH2I)(si, sj, sk);
  chemistry::solve_chemistry_step(*g, 3.15e14, prm, u);  // 10 Myr
  const double f1 = g->field(Field::kH2I)(si, sj, sk);
  EXPECT_GT(f1, 10.0 * f0);
  EXPECT_GT(f1, 1e-7);
  EXPECT_LT(f1, 1e-2);
}

TEST(Chemistry, ThreeBodyConversionAtHighDensity) {
  // n_H ≳ 10¹⁰ cm⁻³ at ~1000 K: three-body formation drives the gas fully
  // molecular (§4: "at central densities ~10¹¹ cm⁻³ atomic and molecular
  // hydrogen exist in similar abundance").
  mesh::Hierarchy h = chem_box(1.0);
  Grid* g = h.grids(0)[0];
  chemistry::ChemistryParams prm;
  prm.cooling = false;
  chemistry::initialize_primordial_composition(*g, prm, 1e-8, 1e-3);
  set_temperature(*g, 1500.0, prm);
  auto u = make_units(1e11);
  chemistry::solve_chemistry_step(*g, 3.15e9, prm, u);  // ~100 yr
  const int si = g->sx(1), sj = g->sy(1), sk = g->sz(1);
  const double fH2 = g->field(Field::kH2I)(si, sj, sk) /
                     (prm.hydrogen_fraction *
                      g->field(Field::kDensity)(si, sj, sk));
  EXPECT_GT(fH2, 0.3);
}

// ---- cooling ---------------------------------------------------------------------

TEST(Chemistry, HotIonizedGasCools) {
  mesh::Hierarchy h = chem_box(1.0);
  Grid* g = h.grids(0)[0];
  chemistry::ChemistryParams prm;
  chemistry::initialize_primordial_composition(*g, prm, 0.5, 0.0);
  set_temperature(*g, 3e4, prm);
  auto u = make_units(1.0);
  const int si = g->sx(1), sj = g->sy(1), sk = g->sz(1);
  const double T0 = chemistry::cell_temperature(*g, si, sj, sk, prm, u);
  chemistry::solve_chemistry_step(*g, 3.15e14, prm, u);
  const double T1 = chemistry::cell_temperature(*g, si, sj, sk, prm, u);
  EXPECT_LT(T1, 0.8 * T0);
  EXPECT_GT(T1, prm.temperature_floor);
}

TEST(Chemistry, H2CooledGasApproachesFewHundredKelvin) {
  // §4: molecular-line cooling brings the cloud core to a few hundred K.
  mesh::Hierarchy h = chem_box(1.0);
  Grid* g = h.grids(0)[0];
  chemistry::ChemistryParams prm;
  chemistry::initialize_primordial_composition(*g, prm, 1e-4, 5e-4);
  set_temperature(*g, 2000.0, prm);
  auto u = make_units(1e4);
  u.t_cmb = 2.725 * 20.0;  // z ≈ 19
  const int si = g->sx(1), sj = g->sy(1), sk = g->sz(1);
  chemistry::solve_chemistry_step(*g, 3.15e14, prm, u);  // 10 Myr
  const double T = chemistry::cell_temperature(*g, si, sj, sk, prm, u);
  EXPECT_LT(T, 800.0);
  // The CMB at z≈19 (≈55 K) is the radiative floor for the H₂ lines.
  EXPECT_GT(T, 50.0);
}

TEST(Chemistry, ComptonCouplingWarmsGasTowardCmb) {
  mesh::Hierarchy h = chem_box(1.0);
  Grid* g = h.grids(0)[0];
  chemistry::ChemistryParams prm;
  prm.temperature_floor = 0.1;
  chemistry::initialize_primordial_composition(*g, prm, 0.3, 0.0);
  set_temperature(*g, 5.0, prm);
  auto u = make_units(1.0);
  u.t_cmb = 2.725 * 100;  // z = 99: strong coupling
  const int si = g->sx(1), sj = g->sy(1), sk = g->sz(1);
  const double T0 = chemistry::cell_temperature(*g, si, sj, sk, prm, u);
  chemistry::solve_chemistry_step(*g, 1e15, prm, u);
  const double T1 = chemistry::cell_temperature(*g, si, sj, sk, prm, u);
  EXPECT_GT(T1, T0);  // heated toward the CMB temperature
}

// ---- robustness -------------------------------------------------------------------

TEST(Chemistry, StiffConditionsStayFiniteAndPositive) {
  mesh::Hierarchy h = chem_box(1.0);
  Grid* g = h.grids(0)[0];
  chemistry::ChemistryParams prm;
  chemistry::initialize_primordial_composition(*g, prm, 0.999, 1e-10);
  set_temperature(*g, 1e6, prm);  // very hot and dense: violent cooling
  auto u = make_units(1e6);
  chemistry::solve_chemistry_step(*g, 1e14, prm, u);  // huge step
  for (Field f : g->field_list()) {
    const auto a = g->field(f);
    for (int k = 0; k < g->nx(2); ++k)
      for (int j = 0; j < g->nx(1); ++j)
        for (int i = 0; i < g->nx(0); ++i) {
          const double v = a(g->sx(i), g->sy(j), g->sz(k));
          EXPECT_TRUE(std::isfinite(v)) << field_name(f);
          if (mesh::is_species(f) || f == Field::kDensity) {
            EXPECT_GE(v, 0.0) << field_name(f);
          }
        }
  }
  // With cooling off and T held at 10⁶ K, helium must ionize through to
  // He⁺⁺ (collisional ionization equilibrium at that temperature).
  mesh::Hierarchy h2 = chem_box(1.0);
  Grid* g2 = h2.grids(0)[0];
  chemistry::ChemistryParams prm2;
  prm2.cooling = false;
  chemistry::initialize_primordial_composition(*g2, prm2, 0.999, 1e-10);
  auto u2 = make_units(1e4);
  for (int it = 0; it < 10; ++it) {
    set_temperature(*g2, 1e6, prm2);
    chemistry::solve_chemistry_step(*g2, 1e11, prm2, u2);
  }
  const int si = g2->sx(1), sj = g2->sy(1), sk = g2->sz(1);
  EXPECT_GT(g2->field(Field::kHeIII)(si, sj, sk),
            g2->field(Field::kHeI)(si, sj, sk));
}

TEST(Chemistry, MinCoolingTimePositiveAndFinite) {
  mesh::Hierarchy h = chem_box(1.0);
  Grid* g = h.grids(0)[0];
  chemistry::ChemistryParams prm;
  chemistry::initialize_primordial_composition(*g, prm, 0.3, 1e-4);
  set_temperature(*g, 1e4, prm);
  auto u = make_units(1.0);
  const double tc = chemistry::min_cooling_time(*g, prm, u);
  EXPECT_GT(tc, 0.0);
  EXPECT_TRUE(std::isfinite(tc));
}

// ---- batched rate/cooling lanes vs the scalar API ---------------------------

TEST(Rates, BatchLanesMatchScalarBitwise) {
  // The scalar API is defined as the n = 1 case of the batch; evaluating a
  // long mixed-temperature row exercises the lane stride/padding logic and
  // must reproduce the scalar values bit-for-bit (no tolerance).
  const double T[] = {0.5,    1.0,   13.5,   99.0, 742.0,  6699.9, 6700.1,
                      1.0e4,  8.7e4, 1.1e6,  5e8,  2e9,    293.0,  1.0e5};
  const int n = static_cast<int>(sizeof(T) / sizeof(T[0]));
  chemistry::RateBatch batch;
  batch.compute(n, T);
  ASSERT_EQ(batch.size(), n);
  for (int i = 0; i < n; ++i) {
    const chemistry::Rates a = batch.row(i);
    const chemistry::Rates b = chemistry::compute_rates(T[i]);
    EXPECT_EQ(a.k1, b.k1) << "T=" << T[i];
    EXPECT_EQ(a.k2, b.k2) << "T=" << T[i];
    EXPECT_EQ(a.k3, b.k3) << "T=" << T[i];
    EXPECT_EQ(a.k4, b.k4) << "T=" << T[i];
    EXPECT_EQ(a.k5, b.k5) << "T=" << T[i];
    EXPECT_EQ(a.k6, b.k6) << "T=" << T[i];
    EXPECT_EQ(a.k7, b.k7) << "T=" << T[i];
    EXPECT_EQ(a.k8, b.k8) << "T=" << T[i];
    EXPECT_EQ(a.k9, b.k9) << "T=" << T[i];
    EXPECT_EQ(a.k10, b.k10) << "T=" << T[i];
    EXPECT_EQ(a.k11, b.k11) << "T=" << T[i];
    EXPECT_EQ(a.k12, b.k12) << "T=" << T[i];
    EXPECT_EQ(a.k13, b.k13) << "T=" << T[i];
    EXPECT_EQ(a.k14, b.k14) << "T=" << T[i];
    EXPECT_EQ(a.k15, b.k15) << "T=" << T[i];
    EXPECT_EQ(a.k16, b.k16) << "T=" << T[i];
    EXPECT_EQ(a.k17, b.k17) << "T=" << T[i];
    EXPECT_EQ(a.k18, b.k18) << "T=" << T[i];
    EXPECT_EQ(a.k19, b.k19) << "T=" << T[i];
    EXPECT_EQ(a.k22, b.k22) << "T=" << T[i];
    EXPECT_EQ(a.k50, b.k50) << "T=" << T[i];
    EXPECT_EQ(a.k51, b.k51) << "T=" << T[i];
    EXPECT_EQ(a.k52, b.k52) << "T=" << T[i];
    EXPECT_EQ(a.k53, b.k53) << "T=" << T[i];
    EXPECT_EQ(a.k54, b.k54) << "T=" << T[i];
    EXPECT_EQ(a.k55, b.k55) << "T=" << T[i];
    EXPECT_EQ(a.k56, b.k56) << "T=" << T[i];
    EXPECT_EQ(a.k57, b.k57) << "T=" << T[i];
  }
  // Capacity reuse across a shrinking batch must not stale-read old lanes.
  batch.compute(2, T + 3);
  const chemistry::Rates c = batch.row(1);
  const chemistry::Rates d = chemistry::compute_rates(T[4]);
  EXPECT_EQ(c.k1, d.k1);
  EXPECT_EQ(c.k13, d.k13);
  EXPECT_EQ(c.k55, d.k55);
}

TEST(Chemistry, CoolingBatchMatchesScalarBitwise) {
  const int n = 24;
  const double t_cmb = 54.5;  // z ≈ 19
  std::vector<double> T(n), nHI(n), nHII(n), nHeI(n), nHeII(n), nHeIII(n),
      ne(n), nH2(n), nHD(n), lambda(n);
  for (int i = 0; i < n; ++i) {
    // Log-spaced temperatures from below the CMB floor to fully ionized.
    T[i] = 10.0 * std::pow(10.0, 5.0 * i / (n - 1.0));
    const double nH = std::pow(10.0, -2.0 + 8.0 * i / (n - 1.0));
    nHI[i] = 0.9 * nH;
    nHII[i] = 0.1 * nH;
    nHeI[i] = 0.08 * nH;
    nHeII[i] = 0.01 * nH;
    nHeIII[i] = 0.001 * nH;
    ne[i] = nHII[i] + nHeII[i] + 2.0 * nHeIII[i];
    nH2[i] = 1e-3 * nH;
    nHD[i] = 1e-7 * nH;
  }
  const chemistry::CoolingRowInput cri{
      t_cmb,        T.data(),     nHI.data(), nHII.data(),  nHeI.data(),
      nHeII.data(), nHeIII.data(), ne.data(), nH2.data(),   nHD.data()};
  chemistry::cooling_rate_batch(n, cri, lambda.data());
  for (int i = 0; i < n; ++i) {
    const chemistry::CoolingInput ci{T[i],      t_cmb,     nHI[i],
                                     nHII[i],   nHeI[i],   nHeII[i],
                                     nHeIII[i], ne[i],     nH2[i],
                                     nHD[i]};
    EXPECT_EQ(lambda[i], chemistry::cooling_rate(ci)) << "i=" << i;
    EXPECT_TRUE(std::isfinite(lambda[i]));
  }
}
