// Analysis-module tests: densest-point search across levels, radial profiles
// on analytic fields, zoom slices reading the finest data, and hierarchy
// statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/analysis.hpp"
#include "mesh/hierarchy.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;

namespace {
mesh::Hierarchy two_level_box(double rho_root, double rho_child) {
  mesh::HierarchyParams p;
  p.root_dims = {16, 16, 16};
  p.max_level = 1;
  mesh::Hierarchy h(p);
  h.build_root();
  Grid* root = h.grids(0)[0];
  for (Field f : root->field_list())
    root->field(f).fill(f == Field::kDensity ? rho_root : 0.1);
  root->store_old_fields();
  auto child = std::make_unique<Grid>(
      h.make_spec(1, {{12, 12, 12}, {20, 20, 20}}), p.fields);
  child->set_parent(root);
  for (Field f : child->field_list())
    child->field(f).fill(f == Field::kDensity ? rho_child : 0.1);
  h.insert_grid(std::move(child));
  return h;
}
}  // namespace

TEST(Analysis, DensestPointPrefersFinestData) {
  mesh::Hierarchy h = two_level_box(1.0, 50.0);
  // Put a root-level spike in an *uncovered* region — the peak must still be
  // found on the child where its density is larger.
  Grid* root = h.grids(0)[0];
  root->field(Field::kDensity)(root->sx(2), root->sy(2), root->sz(2)) = 20.0;
  auto peak = analysis::find_densest_point(h);
  EXPECT_EQ(peak.level, 1);
  EXPECT_DOUBLE_EQ(peak.density, 50.0);
  // Center of the child region is at 0.5.
  EXPECT_NEAR(ext::pos_to_double(peak.position[0]), 0.5, 0.25);
}

TEST(Analysis, DensestPointIgnoresCoveredCoarseCells) {
  mesh::Hierarchy h = two_level_box(100.0, 1.0);
  // The root's covered cells hold 100, but they are masked; the uncovered
  // root cells also hold 100 so the peak is a root cell.
  auto peak = analysis::find_densest_point(h);
  EXPECT_EQ(peak.level, 0);
  EXPECT_DOUBLE_EQ(peak.density, 100.0);
}

TEST(Analysis, RadialProfileOfPowerLawDensity) {
  // ρ(r) = r^-2 around the center: the binned profile must recover the
  // slope.
  mesh::HierarchyParams p;
  p.root_dims = {32, 32, 32};
  mesh::Hierarchy h(p);
  h.build_root();
  Grid* g = h.grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(0.1);
  const auto rho = g->field(Field::kDensity);
  for (int k = 0; k < 32; ++k)
    for (int j = 0; j < 32; ++j)
      for (int i = 0; i < 32; ++i) {
        const double x = (i + 0.5) / 32 - 0.5, y = (j + 0.5) / 32 - 0.5,
                     z = (k + 0.5) / 32 - 0.5;
        const double r = std::sqrt(x * x + y * y + z * z);
        rho(g->sx(i), g->sy(j), g->sz(k)) = std::pow(std::max(r, 0.01), -2.0);
      }
  analysis::ProfileOptions opt;
  opt.nbins = 16;
  opt.r_min = 0.03;
  opt.r_max = 0.4;
  hydro::HydroParams hp;
  chemistry::ChemUnits units;
  ext::PosVec c{ext::pos_t(0.5), ext::pos_t(0.5), ext::pos_t(0.5)};
  auto prof = analysis::radial_profile(h, c, opt, hp, units);
  // Fit the log-slope between the innermost and outermost well-populated
  // bins (cells are sparse at small radii on a 32³ lattice).
  int b1 = -1, b2 = -1;
  for (int b = 0; b < opt.nbins; ++b)
    if (prof.cell_count[b] >= 8) {
      if (b1 < 0) b1 = b;
      b2 = b;
    }
  ASSERT_GE(b1, 0);
  ASSERT_GT(b2, b1);
  const double slope = std::log(prof.gas_density[b2] / prof.gas_density[b1]) /
                       std::log(prof.r[b2] / prof.r[b1]);
  EXPECT_NEAR(slope, -2.0, 0.25);
  // Enclosed mass is monotonic.
  for (int b = 1; b < opt.nbins; ++b)
    EXPECT_GE(prof.enclosed_gas_mass[b], prof.enclosed_gas_mass[b - 1]);
}

TEST(Analysis, RadialVelocityOfHubbleLikeInflow) {
  // v = −r̂ everywhere: mass-weighted v_r must be ≈ −1 in every bin.
  mesh::HierarchyParams p;
  p.root_dims = {16, 16, 16};
  mesh::Hierarchy h(p);
  h.build_root();
  Grid* g = h.grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(0.0);
  g->field(Field::kDensity).fill(1.0);
  g->field(Field::kInternalEnergy).fill(1.0);
  for (int k = 0; k < 16; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 16; ++i) {
        const double x = (i + 0.5) / 16 - 0.5, y = (j + 0.5) / 16 - 0.5,
                     z = (k + 0.5) / 16 - 0.5;
        const double r = std::max(std::sqrt(x * x + y * y + z * z), 1e-9);
        g->field(Field::kVelocityX)(g->sx(i), g->sy(j), g->sz(k)) = -x / r;
        g->field(Field::kVelocityY)(g->sx(i), g->sy(j), g->sz(k)) = -y / r;
        g->field(Field::kVelocityZ)(g->sx(i), g->sy(j), g->sz(k)) = -z / r;
      }
  analysis::ProfileOptions opt;
  opt.nbins = 8;
  opt.r_min = 0.05;
  opt.r_max = 0.45;
  hydro::HydroParams hp;
  chemistry::ChemUnits units;
  ext::PosVec c{ext::pos_t(0.5), ext::pos_t(0.5), ext::pos_t(0.5)};
  auto prof = analysis::radial_profile(h, c, opt, hp, units);
  for (int b = 0; b < opt.nbins; ++b)
    if (prof.cell_count[b] > 0) {
      EXPECT_NEAR(prof.v_radial[b], -1.0, 1e-6);
    }
}

TEST(Analysis, SliceReadsFinestAvailableData) {
  mesh::Hierarchy h = two_level_box(1.0, 1000.0);
  // Slice through the center: points inside the child region read 1000.
  auto s = analysis::density_slice(h, /*axis=*/2, ext::pos_t(0.5),
                                   {0.5, 0.5}, /*half=*/0.4, /*n=*/32);
  EXPECT_EQ(s.finest_level_touched, 1);
  // Center pixel (inside the child) = log10(1000) = 3.
  EXPECT_NEAR(s.log10_density[16 * 32 + 16], 3.0, 1e-9);
  // Corner pixel (outside the child) = 0.
  EXPECT_NEAR(s.log10_density[0], 0.0, 1e-9);
  EXPECT_NEAR(s.max_log, 3.0, 1e-9);
  EXPECT_NEAR(s.min_log, 0.0, 1e-9);
}

TEST(Analysis, HierarchyStatsNormalizesWork) {
  mesh::Hierarchy h = two_level_box(1.0, 2.0);
  auto st = analysis::hierarchy_stats(h);
  EXPECT_EQ(st.max_level, 1);
  EXPECT_EQ(st.total_grids, 2u);
  ASSERT_EQ(st.work_per_level.size(), 2u);
  const double wmax =
      std::max(st.work_per_level[0], st.work_per_level[1]);
  EXPECT_DOUBLE_EQ(wmax, 1.0);
}
