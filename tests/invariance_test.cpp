// Cross-cutting invariance tests: axis-orientation symmetry of the split
// solver, refinement factors other than 2 (the paper: "the refinement factor
// is constrained to be an integer"), γ-law sweeps of the Riemann/Sod
// machinery, and mirror symmetry of gravity.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/setup.hpp"
#include "core/simulation.hpp"
#include "gravity/gravity.hpp"
#include "hydro/hydro.hpp"
#include "mesh/boundary.hpp"
#include "mesh/interpolate.hpp"
#include "mesh/project.hpp"
#include "util/rng.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;

namespace {
constexpr Field kVel[3] = {Field::kVelocityX, Field::kVelocityY,
                           Field::kVelocityZ};

/// A 1-d blast profile placed along the given axis of a 3-d box.
mesh::Hierarchy axis_blast(int axis, int n) {
  mesh::HierarchyParams p;
  p.root_dims = {n, n, n};
  mesh::Hierarchy h(p);
  h.build_root();
  Grid* g = h.grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(0.0);
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i) {
        const int idx[3] = {i, j, k};
        const double x = (idx[axis] + 0.5) / n;
        const double hot = std::abs(x - 0.5) < 0.15 ? 10.0 : 1.0;
        g->field(Field::kDensity)(g->sx(i), g->sy(j), g->sz(k)) = 1.0;
        g->field(Field::kInternalEnergy)(g->sx(i), g->sy(j), g->sz(k)) = hot;
        g->field(Field::kTotalEnergy)(g->sx(i), g->sy(j), g->sz(k)) = hot;
      }
  return h;
}
}  // namespace

class AxisSymmetry : public ::testing::TestWithParam<int> {};

TEST_P(AxisSymmetry, BlastEvolvesIdenticallyAlongEveryAxis) {
  const int axis = GetParam();
  const int n = 16;
  mesh::Hierarchy ref = axis_blast(0, n);
  mesh::Hierarchy rot = axis_blast(axis, n);
  hydro::HydroParams hp;
  auto exp = cosmology::Expansion::statics();
  for (int s = 0; s < 4; ++s) {
    for (mesh::Hierarchy* h : {&ref, &rot}) {
      mesh::set_boundary_values(*h, 0);
      Grid* g = h->grids(0)[0];
      hydro::solve_hydro_step(*g, 0.004, hp, exp);
    }
  }
  // Compare the profile along the blast axis (slices through the center).
  Grid* g0 = ref.grids(0)[0];
  Grid* g1 = rot.grids(0)[0];
  for (int i = 0; i < n; ++i) {
    int a0[3] = {i, n / 2, n / 2};
    int a1[3];
    a1[axis] = i;
    a1[(axis + 1) % 3] = n / 2;
    a1[(axis + 2) % 3] = n / 2;
    EXPECT_NEAR(
        g0->field(Field::kDensity)(g0->sx(a0[0]), g0->sy(a0[1]), g0->sz(a0[2])),
        g1->field(Field::kDensity)(g1->sx(a1[0]), g1->sy(a1[1]), g1->sz(a1[2])),
        1e-11)
        << "axis " << axis << " i=" << i;
    EXPECT_NEAR(g0->field(kVel[0])(g0->sx(a0[0]), g0->sy(a0[1]), g0->sz(a0[2])),
                g1->field(kVel[axis])(g1->sx(a1[0]), g1->sy(a1[1]),
                                      g1->sz(a1[2])),
                1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(Axes, AxisSymmetry, ::testing::Values(1, 2));

class RefineFactor : public ::testing::TestWithParam<int> {};

TEST_P(RefineFactor, HierarchyMachineryWorksAtAnyIntegerFactor) {
  const int r = GetParam();
  mesh::HierarchyParams p;
  p.root_dims = {8, 8, 8};
  p.refine_factor = r;
  p.max_level = 1;
  mesh::Hierarchy h(p);
  h.build_root();
  Grid* root = h.grids(0)[0];
  util::Rng rng(5);
  for (Field f : root->field_list())
    for (auto& v : root->field(f))
      v = mesh::is_density_like(f) ? 1.0 + rng.uniform() : 0.1;
  root->store_old_fields();
  // Refine the center.
  h.rebuild(1, [](const Grid& g, std::vector<mesh::Index3>& flags) {
    for (std::int64_t k = 3; k < 5; ++k)
      for (std::int64_t j = 3; j < 5; ++j)
        for (std::int64_t i = 3; i < 5; ++i) flags.push_back({i, j, k});
    (void)g;
  });
  ASSERT_EQ(h.deepest_level(), 1);
  h.check_invariants();
  EXPECT_EQ(h.level_dims(1)[0], 8 * r);
  // Interior fill conserved mass per covered coarse cell: project back and
  // compare with the pre-refinement root values.
  Grid* child = h.grids(1)[0];
  const auto rho_view = root->field(Field::kDensity);
  util::Array3<double> before(rho_view.nx(), rho_view.ny(), rho_view.nz());
  std::copy(rho_view.begin(), rho_view.end(), before.begin());
  mesh::project_to_parent(*child, *root);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i)
        EXPECT_NEAR(root->field(Field::kDensity)(root->sx(i), root->sy(j),
                                                 root->sz(k)),
                    before(root->sx(i), root->sy(j), root->sz(k)), 1e-12);
  // Boundary fill works (ghosts finite, constant-preserving on constants).
  mesh::set_boundary_values(h, 1);
  for (const double v : child->field(Field::kDensity))
    EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Factors, RefineFactor, ::testing::Values(2, 3, 4));

class GammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweep, SodTubeConservesAndStaysPositive) {
  const double gamma = GetParam();
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {64, 1, 1};
  cfg.hydro.gamma = gamma;
  core::Simulation sim(cfg);
  sim.initialize(core::sod_tube_setup());
  sim.evolve_until(0.1, 4000);
  Grid* g = sim.hierarchy().grids(0)[0];
  for (int i = 0; i < 64; ++i) {
    EXPECT_GT(g->field(Field::kDensity)(g->sx(i), 0, 0), 0.0);
    EXPECT_GT(g->field(Field::kInternalEnergy)(g->sx(i), 0, 0), 0.0);
    EXPECT_TRUE(std::isfinite(g->field(Field::kVelocityX)(g->sx(i), 0, 0)));
  }
  // The shock has moved right, the rarefaction left.
  EXPECT_GT(g->field(Field::kVelocityX)(g->sx(40), 0, 0), 0.05);
  EXPECT_LT(g->field(Field::kDensity)(g->sx(20), 0, 0), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Gammas, GammaSweep,
                         ::testing::Values(1.2, 1.4, 5.0 / 3.0, 2.0));

TEST(GravitySymmetry, MirrorMassesGiveMirrorForces) {
  mesh::HierarchyParams p;
  p.root_dims = {16, 16, 16};
  mesh::Hierarchy h(p);
  h.build_root();
  Grid* g = h.grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(0.0);
  g->allocate_gravity();
  gravity::begin_gravitating_mass(h, 0);
  const auto gm = g->gravitating_mass();
  gm.fill(0.0);
  gm(4 + 1, 8 + 1, 8 + 1) = 100.0;
  gm(12 + 1, 8 + 1, 8 + 1) = 100.0;  // mirror about x = 8.5 cells
  gravity::GravityParams gp;
  gravity::solve_root_gravity(h, gp, 1.0);
  gravity::compute_accelerations(*g, 1.0);
  // Mid-plane x-acceleration vanishes by symmetry (cells 8 and 8 mirrored
  // pairs): compare mirrored samples.
  for (int off : {1, 2, 3}) {
    const double a_left = g->acceleration(0)(8 - off, 8, 8);
    const double a_right = g->acceleration(0)(8 + off, 8, 8);
    EXPECT_NEAR(a_left, -a_right, 1e-10 * std::abs(a_left) + 1e-14)
        << "off=" << off;
  }
}

TEST(Wcycle, RefineFactorFourTakesFourChildSteps) {
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {8, 8, 8};
  cfg.hierarchy.refine_factor = 4;
  cfg.hierarchy.max_level = 1;
  cfg.trace_wcycle = true;
  cfg.rebuild_interval = 1 << 20;
  core::Simulation sim(cfg);
  sim.add_static_region(1, {{8, 8, 8}, {24, 24, 24}});
  sim.initialize(core::uniform_setup(1.0, 1.0));
  ASSERT_EQ(sim.hierarchy().deepest_level(), 1);
  sim.advance_root_step();
  int child_steps = 0;
  for (const auto& e : sim.trace())
    if (e.level == 1) ++child_steps;
  // Uniform state: CFL scales exactly with dx, so r = 4 child steps.
  EXPECT_EQ(child_steps, 4);
  EXPECT_TRUE(sim.hierarchy().grids(1)[0]->time() ==
              sim.hierarchy().grids(0)[0]->time());
}

TEST(Boundary, SubgridAtOutflowDomainEdgeClampsGhosts) {
  // A refined region touching the domain edge of a non-periodic tube: its
  // outer ghosts must replicate the edge value (outflow), not wrap data from
  // the far side of the box.
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {32, 1, 1};
  cfg.hierarchy.max_level = 1;
  cfg.hydro.gamma = 1.4;
  cfg.rebuild_interval = 1 << 20;
  core::Simulation sim(cfg);
  sim.add_static_region(1, {{32, 0, 0}, {64, 1, 1}});  // right half, to edge
  sim.initialize(core::sod_tube_setup());
  ASSERT_EQ(sim.hierarchy().deepest_level(), 1);
  // Parent-level boundaries first (as EvolveLevel does): the child's
  // out-of-domain ghosts are interpolated from the *parent's* outflow-filled
  // ghost zones.
  mesh::set_boundary_values(sim.hierarchy(), 0);
  mesh::set_boundary_values(sim.hierarchy(), 1);
  Grid* child = sim.hierarchy().grids(1)[0];
  // High-x ghosts beyond the domain: must equal the rightmost state (0.125),
  // NOT the left state (1.0) that periodic wrapping would import.
  for (int gidx = child->nx(0); gidx < child->nx(0) + child->ng(0); ++gidx)
    EXPECT_NEAR(child->field(Field::kDensity)(child->sx(gidx), 0, 0), 0.125,
                1e-10);
  // And the Sod evolution stays sane through the edge-touching child.
  sim.evolve_until(0.1, 4000);
  for (int i = 0; i < 32; ++i) {
    const double rho = sim.hierarchy().grids(0)[0]->field(Field::kDensity)(
        sim.hierarchy().grids(0)[0]->sx(i), 0, 0);
    EXPECT_GT(rho, 0.0);
    EXPECT_LT(rho, 1.2);
  }
}

TEST(Hydro, DualEnergyPreservesColdSupersonicFlow) {
  // Mach ~30 uniform cold flow: total energy is ~entirely kinetic, so the
  // temperature recovered from (E − v²/2) would be garbage; the dual-energy
  // internal field must preserve it.
  mesh::HierarchyParams p;
  p.root_dims = {16, 16, 16};
  mesh::Hierarchy h(p);
  h.build_root();
  Grid* g = h.grids(0)[0];
  const double e0 = 1e-4, v0 = 0.3;  // c_s ≈ 1e-2, Mach 30
  g->field(Field::kDensity).fill(1.0);
  g->field(Field::kVelocityX).fill(v0);
  g->field(Field::kVelocityY).fill(0.0);
  g->field(Field::kVelocityZ).fill(0.0);
  g->field(Field::kInternalEnergy).fill(e0);
  g->field(Field::kTotalEnergy).fill(e0 + 0.5 * v0 * v0);
  hydro::HydroParams hp;
  auto exp = cosmology::Expansion::statics();
  for (int s = 0; s < 10; ++s) {
    mesh::set_boundary_values(h, 0);
    const double dt = hydro::compute_timestep(*g, hp, exp);
    hydro::solve_hydro_step(*g, dt, hp, exp);
  }
  // The internal energy survives to high relative accuracy.
  EXPECT_NEAR(g->field(Field::kInternalEnergy)(g->sx(8), g->sy(8), g->sz(8)),
              e0, 0.01 * e0);
}
