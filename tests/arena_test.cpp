// Storage-arena tests: block pooling semantics (size classes, alignment,
// AllocStats heap-only accounting), Buffer3/particle-vector recycling, the
// regrid-storm stress contract (§5: steady-state heap allocations per
// rebuild drop to ~0 with the arena on), the incremental-regrid keep path,
// and a checkpoint round trip across storage modes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/auditor.hpp"
#include "core/parameter_file.hpp"
#include "core/simulation.hpp"
#include "io/checkpoint.hpp"
#include "mesh/field_storage.hpp"
#include "mesh/hierarchy.hpp"
#include "perf/metrics.hpp"
#include "util/alloc_stats.hpp"
#include "util/arena.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;
using mesh::Hierarchy;
using mesh::HierarchyParams;
using mesh::Index3;

// ---- util::Arena ---------------------------------------------------------------

TEST(Arena, RoundsUpToGranularityAndAligns) {
  util::ArenaConfig cfg;
  cfg.granularity = 512;
  util::Arena a(cfg);
  util::ArenaBlock b = a.acquire(10);
  ASSERT_NE(b.ptr, nullptr);
  EXPECT_GE(b.capacity, 10u);
  EXPECT_EQ(b.capacity % 512, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.ptr) % 64, 0u);
  a.release(std::move(b));
  a.trim();
  EXPECT_EQ(a.bytes_pooled(), 0u);
}

TEST(Arena, PoolRecyclesBlocksWithoutTouchingTheHeap) {
  util::Arena a;
  const std::uint64_t heap0 = util::AllocStats::global().allocations();
  util::ArenaBlock b1 = a.acquire(100);
  double* first = b1.ptr;
  EXPECT_EQ(util::AllocStats::global().allocations(), heap0 + 1);
  a.release(std::move(b1));
  EXPECT_GT(a.bytes_pooled(), 0u);
  // Same size class (both round up to one granularity quantum): the pooled
  // block comes back and AllocStats sees no new heap event.
  util::ArenaBlock b2 = a.acquire(200);
  EXPECT_EQ(b2.ptr, first);
  EXPECT_EQ(util::AllocStats::global().allocations(), heap0 + 1);
  a.release(std::move(b2));
  a.trim();
  EXPECT_EQ(a.bytes_pooled(), 0u);
}

TEST(Arena, PoolOffIsAHeapPassthrough) {
  util::ArenaConfig cfg;
  cfg.pool = false;
  util::Arena a(cfg);
  const std::uint64_t frees0 = util::AllocStats::global().frees();
  util::ArenaBlock b = a.acquire(10);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.ptr) % 64, 0u);
  a.release(std::move(b));
  EXPECT_EQ(util::AllocStats::global().frees(), frees0 + 1);
  EXPECT_EQ(a.bytes_pooled(), 0u);
}

TEST(Arena, HeapFallbackMatchesAlignmentContract) {
  util::ArenaBlock b = util::Arena::heap_acquire(77);
  ASSERT_NE(b.ptr, nullptr);
  EXPECT_GE(b.capacity, 77u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.ptr) % 64, 0u);
  util::Arena::heap_release(std::move(b));
}

// ---- mesh::Buffer3 / mesh::StorageArena ----------------------------------------

TEST(Buffer3, ResizeFillsEveryElementAndRecyclesThroughArena) {
  util::Arena a;
  const double* recycled = nullptr;
  {
    mesh::Buffer3 b;
    b.set_arena(&a);
    b.resize(4, 5, 6, 3.5);
    EXPECT_EQ(b.size(), 4u * 5u * 6u);
    for (double v : b.view()) EXPECT_EQ(v, 3.5);
    recycled = b.data();
  }  // released back to the pool
  mesh::Buffer3 c;
  c.set_arena(&a);
  c.resize(6, 5, 4, 0.0);  // same size class: must reuse the pooled block
  EXPECT_EQ(c.data(), recycled);
  // resize always overwrites, so a recycled block is indistinguishable from
  // a fresh one.
  for (double v : c.view()) EXPECT_EQ(v, 0.0);
}

TEST(StorageArena, ParticleVectorsRecycleWithCapacityIntact) {
  mesh::StorageArena sa;
  std::vector<mesh::Particle> v = sa.acquire_particles();
  EXPECT_TRUE(v.empty());
  v.reserve(1000);
  const std::size_t cap = v.capacity();
  v.push_back(mesh::Particle{});
  sa.release_particles(std::move(v));
  std::vector<mesh::Particle> w = sa.acquire_particles();
  EXPECT_TRUE(w.empty());
  EXPECT_GE(w.capacity(), cap);
}

// ---- regrid storm ---------------------------------------------------------------

namespace {

/// Flag a fixed global sphere of parent cells (position-based, so the same
/// boxes come back on every rebuild — the steady state of a long run).
Hierarchy::FlagFn sphere_flagger() {
  return [](const Grid& g, std::vector<Index3>& flags) {
    const Index3 dims = g.spec().level_dims;
    for (std::int64_t k = g.box().lo[2]; k < g.box().hi[2]; ++k)
      for (std::int64_t j = g.box().lo[1]; j < g.box().hi[1]; ++j)
        for (std::int64_t i = g.box().lo[0]; i < g.box().hi[0]; ++i) {
          const double x = (static_cast<double>(i) + 0.5) / dims[0] - 0.5;
          const double y = (static_cast<double>(j) + 0.5) / dims[1] - 0.5;
          const double z = (static_cast<double>(k) + 0.5) / dims[2] - 0.5;
          if (x * x + y * y + z * z < 0.2 * 0.2) flags.push_back({i, j, k});
        }
  };
}

Hierarchy storm_hierarchy(const mesh::ArenaOptions& opt) {
  HierarchyParams p;
  p.root_dims = {16, 16, 16};
  p.max_level = 2;
  p.arena = opt;
  Hierarchy h(p);
  h.build_root();
  for (Grid* g : h.grids(0)) {
    for (Field f : g->field_list()) g->field(f).fill(1.0);
    g->store_old_fields();
  }
  return h;
}

/// Heap allocations recorded by AllocStats over `reps` steady-state rebuilds
/// (pools primed by a few warm-up rebuilds first).
std::uint64_t heap_allocs_for_rebuilds(const mesh::ArenaOptions& opt,
                                       int reps) {
  Hierarchy h = storm_hierarchy(opt);
  const Hierarchy::FlagFn flag = sphere_flagger();
  for (int i = 0; i < 3; ++i) h.rebuild(1, flag);
  EXPECT_GE(h.deepest_level(), 1);
  const std::uint64_t a0 = util::AllocStats::global().allocations();
  for (int i = 0; i < reps; ++i) h.rebuild(1, flag);
  h.check_invariants();
  return util::AllocStats::global().allocations() - a0;
}

}  // namespace

TEST(RegridStorm, ArenaDropsSteadyStateHeapAllocsTenfold) {
  constexpr int kReps = 8;
  mesh::ArenaOptions off;
  off.pool = false;
  off.incremental = false;
  const std::uint64_t heap_off = heap_allocs_for_rebuilds(off, kReps);
  EXPECT_GT(heap_off, 0u);  // every rebuild re-allocates every subgrid

  // Production configuration: pooled blocks + incremental keep.  Identical
  // flags mean every grid is kept alive, so the storm touches the heap not
  // at all.
  const std::uint64_t heap_on =
      heap_allocs_for_rebuilds(mesh::ArenaOptions{}, kReps);
  EXPECT_EQ(heap_on / kReps, 0u);
  EXPECT_GE(heap_off, 10 * std::max<std::uint64_t>(heap_on, 1));

  // Pooling alone (full rebuild each time) must also absorb the storm: new
  // grids draw recycled blocks from the generation they replace.
  mesh::ArenaOptions pool_only;
  pool_only.incremental = false;
  const std::uint64_t heap_pool = heap_allocs_for_rebuilds(pool_only, kReps);
  EXPECT_GE(heap_off, 10 * std::max<std::uint64_t>(heap_pool, 1));
}

TEST(RegridStorm, IncrementalRebuildKeepsUnchangedGrids) {
  Hierarchy h = storm_hierarchy(mesh::ArenaOptions{});
  const Hierarchy::FlagFn flag = sphere_flagger();
  // Two rebuilds reach the steady state: the first creates level 2, whose
  // nesting footprint widens the level-1 flags on the second.
  h.rebuild(1, flag);
  h.rebuild(1, flag);
  ASSERT_GE(h.deepest_level(), 1);
  std::size_t refined = 0;
  for (int l = 1; l <= h.deepest_level(); ++l) refined += h.num_grids(l);
  ASSERT_GT(refined, 0u);
  static perf::Counter& kept =
      perf::Registry::global().counter("arena.regrid_kept_grids");
  const std::uint64_t kept0 = kept.value();
  h.rebuild(1, flag);  // identical boxes: every refined grid survives
  EXPECT_EQ(kept.value() - kept0, refined);
  h.check_invariants();
}

// ---- checkpoint round trip across storage modes --------------------------------

TEST(ArenaCheckpoint, RoundTripAcrossStorageModesIsBitwiseStable) {
  const std::string deck_path =
      std::string(ENZO_SOURCE_DIR) + "/decks/cosmology_box.enzo";
  const std::string ckpt = ::testing::TempDir() + "arena_roundtrip.ckpt";

  // Evolve on arena-backed storage (the default) far enough to refine, then
  // checkpoint.
  core::ParameterDeck deck = core::parse_parameter_file(deck_path);
  core::Simulation sim(deck.config);
  core::setup_from_deck(sim, deck);
  for (int s = 0; s < 2; ++s) sim.advance_root_step();
  const analysis::AuditReport before = sim.run_audit();
  io::write_checkpoint(sim, ckpt);

  // Restore into plain heap storage: the bytes in a checkpoint must not
  // depend on where the source grids kept them, and vice versa.
  core::ParameterDeck deck2 = core::parse_parameter_file(deck_path);
  deck2.config.hierarchy.arena.pool = false;
  deck2.config.hierarchy.arena.incremental = false;
  core::Simulation heap_sim(deck2.config);
  io::read_checkpoint(heap_sim, ckpt);
  const analysis::AuditReport after = heap_sim.run_audit();
  EXPECT_EQ(after.mass_total, before.mass_total);
  EXPECT_EQ(after.energy_total, before.energy_total);
  EXPECT_EQ(after.violations.size(), before.violations.size());

  // And back again into arena-backed storage.
  core::ParameterDeck deck3 = core::parse_parameter_file(deck_path);
  core::Simulation arena_sim(deck3.config);
  io::read_checkpoint(arena_sim, ckpt);
  const analysis::AuditReport again = arena_sim.run_audit();
  EXPECT_EQ(again.mass_total, before.mass_total);
  EXPECT_EQ(again.energy_total, before.energy_total);
  std::filesystem::remove(ckpt);
}
