// Full-resolution analytic regression sweeps (ctest -L regression; the
// tools/ci.sh `regression` stage).  Each verification problem is run
// through the problem registry exactly as a deck would run it, the L1
// density error against the analytic reference is measured on the root
// level, and both the error magnitude and the convergence order are gated.
// A final throughput test replays representative scenarios and writes
// BENCH_regression.json (check_kernels format) so ci.sh can gate
// zone-cycles/sec against bench/regression_baseline.json.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parameter_file.hpp"
#include "core/simulation.hpp"
#include "cosmology/frw.hpp"
#include "perf/metrics.hpp"
#include "problems/registry.hpp"

using namespace enzo;

namespace {

core::ParameterDeck parse(const std::string& text) {
  std::istringstream in(text);
  return core::parse_parameter_deck(in);
}

core::ParameterDeck parse_file(const std::string& rel) {
  return core::parse_parameter_file(std::string(ENZO_SOURCE_DIR) + "/" + rel);
}

// Run a registered problem to t_stop and return the registry's L1 density
// error against the analytic reference.
double run_l1(const core::ParameterDeck& deck, double t_stop) {
  core::Simulation sim(deck.config);
  core::setup_from_deck(sim, deck);
  sim.evolve_until(t_stop, 1 << 20);
  return problems::Registry::global()
      .at(deck.problem)
      .l1_density_error(sim, deck);
}

std::string sod_deck(int n, const std::string& problem = "SodTube") {
  std::string text = "ProblemType = " + problem +
                     "\nTopGridDimensions = " + std::to_string(n) +
                     " 1 1\nGamma = 1.4\n";
  if (problem == "SodTubeSMR") text += "MaximumRefinementLevel = 1\n";
  return text;
}

std::string sedov_deck(int n, int max_level) {
  // Deposit over a fixed number of root cells (2.5), the standard Sedov
  // test convention: the finite-deposit transient then shrinks with the
  // cell size instead of imposing a resolution-independent error floor.
  char radius[32];
  std::snprintf(radius, sizeof radius, "%.10g", 2.5 / n);
  return "ProblemType = " + std::string(max_level > 0 ? "SedovBlastSMR"
                                                      : "SedovBlast") +
         "\nTopGridDimensions = " + std::to_string(n) + " " +
         std::to_string(n) + " " + std::to_string(n) +
         "\nMaximumRefinementLevel = " + std::to_string(max_level) +
         "\nSedovDepositRadius = " + radius + "\n";
}

double order_of(double coarse, double fine) { return std::log2(coarse / fine); }

}  // namespace

// ---- Sod shock tube -------------------------------------------------------

TEST(Regression, SodConvergesAtFirstOrder) {
  const double t = 0.15;
  std::vector<double> err;
  for (int n : {64, 128, 256}) err.push_back(run_l1(parse(sod_deck(n)), t));
  std::printf("sod L1: %.3e %.3e %.3e  orders %.2f %.2f\n", err[0], err[1],
              err[2], order_of(err[0], err[1]), order_of(err[1], err[2]));
  EXPECT_LT(err[2], 6e-3);
  EXPECT_GT(order_of(err[0], err[1]), 0.6);
  EXPECT_GT(order_of(err[1], err[2]), 0.6);
  EXPECT_LT(order_of(err[0], err[1]), 1.8);
}

TEST(Regression, SodSMRConvergesAndBeatsUnigrid) {
  // t = 0.1: the full wave fan (rarefaction head x ~ 0.32, shock x ~ 0.68)
  // is still inside the refined middle half of the tube.  By t = 0.15 the
  // shock has crossed the fine/coarse boundary and the root-level error is
  // coarse-dominated again.
  const double t = 0.1;
  const double uni64 = run_l1(parse(sod_deck(64)), t);
  const double smr64 = run_l1(parse(sod_deck(64, "SodTubeSMR")), t);
  const double smr128 = run_l1(parse(sod_deck(128, "SodTubeSMR")), t);
  std::printf("sod SMR L1: uni64 %.3e smr64 %.3e smr128 %.3e  order %.2f\n",
              uni64, smr64, smr128, order_of(smr64, smr128));
  // The refined middle half covers the full wave fan at t = 0.15, so the
  // projected root solution must beat unigrid at the same root resolution...
  EXPECT_LT(smr64, uni64);
  // ...and keep converging when the root is refined.
  EXPECT_GT(order_of(smr64, smr128), 0.6);
}

// ---- Sedov-Taylor blast ---------------------------------------------------

TEST(Regression, SedovConvergesUnigrid) {
  const double t = 0.05;
  const double e32 = run_l1(parse(sedov_deck(32, 0)), t);
  const double e64 = run_l1(parse(sedov_deck(64, 0)), t);
  std::printf("sedov L1: %.3e %.3e  order %.2f\n", e32, e64,
              order_of(e32, e64));
  // Whole-box L1 for a spherical blast on a Cartesian grid is dominated by
  // the shock cutting cells at every angle; measured order at 32->64 is
  // ~0.5 (pre-asymptotic), so the gate pins convergence without demanding
  // the asymptotic rate.  16^3 sits below the convergent regime entirely.
  EXPECT_LT(e64, 0.09);
  EXPECT_GT(order_of(e32, e64), 0.35);
}

TEST(Regression, SedovAMRBeatsUnigridRoot) {
  const double t = 0.05;
  const double uni = run_l1(parse(sedov_deck(16, 0)), t);
  const double amr = run_l1(parse(sedov_deck(16, 1)), t);
  std::printf("sedov AMR L1: uni16 %.3e amr16+1 %.3e\n", uni, amr);
  // The statically refined central region holds the shock for the whole
  // run; the level-1 solution projected into the root must beat plain 16^3.
  EXPECT_LT(amr, uni);
}

// ---- Zel'dovich pancake ---------------------------------------------------

TEST(Regression, ZeldovichMatchesPreCausticProfile) {
  // The shipped deck: z_init = 100, caustic at z = 3.  Evolve to z = 5
  // (pre-caustic, peak delta ~ 2) and compare against the exact Zel'dovich
  // profile at the evolved growth factor — this pins the whole comoving
  // path (FRW background, expansion sources, FFT gravity) to an exact
  // cosmological solution.  The residual error is the second-order part of
  // the linear-theory initialization, which is why the deck starts deep
  // (z = 30 leaves an N-independent ~7% floor; z = 100 gets under 2%).
  double err[2] = {0.0, 0.0};
  for (int k = 0; k < 2; ++k) {
    const int n = k == 0 ? 64 : 128;
    auto deck = parse_file("decks/zeldovich.enzo");
    ASSERT_EQ(deck.problem, "ZeldovichPancake");
    deck.config.hierarchy.root_dims = {n, 1, 1};
    core::Simulation sim(deck.config);
    core::setup_from_deck(sim, deck);
    cosmology::Frw frw(deck.config.frw);
    const double t5 =
        frw.time_of_a(cosmology::Frw::a_of_z(5.0)) / sim.config().units.time_s;
    sim.evolve_until(t5, 1 << 20);
    err[k] = problems::Registry::global()
                 .at(deck.problem)
                 .l1_density_error(sim, deck);
  }
  std::printf("zeldovich L1 at z=5: n=64 %.3e n=128 %.3e\n", err[0], err[1]);
  EXPECT_LT(err[1], 0.03);
  // Refinement must sharpen the match (measured ratio ~ 0.4).
  EXPECT_LT(err[1], 0.75 * err[0]);
}

// ---- throughput -----------------------------------------------------------

// Replays representative scenarios, measuring zone-cycles/sec through the
// driver.zone_cycles counter, and writes BENCH_regression.json in the
// check_kernels flat format.  Each scenario repeats until enough wall time
// has accumulated for a stable rate.
TEST(RegressionBench, WritesThroughputJson) {
  struct Scenario {
    const char* name;
    std::string deck_text;
    double t_stop;
  };
  const std::vector<Scenario> scenarios = {
      {"sod_unigrid_1024", sod_deck(1024), 0.15},
      {"sod_smr_256", sod_deck(256, "SodTubeSMR"), 0.15},
      {"sedov_unigrid_32", sedov_deck(32, 0), 0.05},
      {"sedov_amr_16", sedov_deck(16, 1), 0.05},
  };

  perf::Counter& zones = perf::Registry::global().counter("driver.zone_cycles");
  std::ofstream out("BENCH_regression.json");
  ASSERT_TRUE(out.is_open());
  out << "{\n";
  bool first = true;
  for (const auto& sc : scenarios) {
    const auto deck = parse(sc.deck_text);
    const std::uint64_t z0 = zones.value();
    const auto start = std::chrono::steady_clock::now();
    double seconds = 0.0;
    int reps = 0;
    while (seconds < 0.3 && reps < 8) {
      core::Simulation sim(deck.config);
      core::setup_from_deck(sim, deck);
      sim.evolve_until(sc.t_stop, 1 << 20);
      ++reps;
      seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    }
    const std::uint64_t cycles = zones.value() - z0;
    ASSERT_GT(cycles, 0u) << sc.name;
    const double rate = static_cast<double>(cycles) / seconds;
    std::printf("%-20s %3d reps  %12llu zone-cycles  %.4g cells/s\n", sc.name,
                reps, static_cast<unsigned long long>(cycles), rate);
    if (!first) out << ",\n";
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  \"%s\": {\"cells_per_second\": %.6g, "
                  "\"zone_cycles\": %llu, \"reps\": %d}",
                  sc.name, rate, static_cast<unsigned long long>(cycles),
                  reps);
    out << buf;
  }
  out << "\n}\n";
}
