// AMR invariant auditor tests: a healthy hierarchy passes every check, and
// each deliberately injected corruption — overlap, misalignment, projection
// mismatch, stale ghosts, flux-register mismatch, escaped particles,
// non-finite data, conservation drift — is detected and attributed to the
// right check.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "analysis/auditor.hpp"
#include "core/parameter_file.hpp"
#include "core/setup.hpp"
#include "core/simulation.hpp"
#include "mesh/boundary.hpp"
#include "mesh/hierarchy.hpp"
#include "mesh/project.hpp"
#include "perf/log.hpp"
#include "perf/metrics.hpp"

using namespace enzo;
using namespace enzo::mesh;
using analysis::AuditOptions;
using analysis::AuditReport;
namespace ext = enzo::ext;

namespace {

/// Count recorded violations attributed to one check.
std::size_t count_check(const AuditReport& r, const std::string& check) {
  std::size_t n = 0;
  for (const auto& v : r.violations)
    if (v.check == check) ++n;
  return n;
}

Hierarchy::FlagFn center_flagger(double frac) {
  return [frac](const Grid& g, std::vector<Index3>& flags) {
    const Index3 dims = g.spec().level_dims;
    for (std::int64_t k = g.box().lo[2]; k < g.box().hi[2]; ++k)
      for (std::int64_t j = g.box().lo[1]; j < g.box().hi[1]; ++j)
        for (std::int64_t i = g.box().lo[0]; i < g.box().hi[0]; ++i) {
          const double x = (i + 0.5) / dims[0] - 0.5;
          const double y = (j + 0.5) / dims[1] - 0.5;
          const double z = (k + 0.5) / dims[2] - 0.5;
          if (x * x + y * y + z * z < frac * frac) flags.push_back({i, j, k});
        }
  };
}

/// A two-level hierarchy with smoothly varying fields, boundaries current.
Hierarchy make_healthy_hierarchy() {
  HierarchyParams p;
  p.root_dims = {16, 16, 16};
  p.max_level = 2;
  Hierarchy h(p);
  h.build_root();
  for (Grid* g : h.grids(0)) {
    for (int k = 0; k < g->nt(2); ++k)
      for (int j = 0; j < g->nt(1); ++j)
        for (int i = 0; i < g->nt(0); ++i) {
          const double x = (i + 0.5) / g->nt(0);
          g->field(Field::kDensity)(i, j, k) = 1.0 + 0.3 * std::sin(x * 6.28);
          g->field(Field::kTotalEnergy)(i, j, k) = 1.5;
          g->field(Field::kInternalEnergy)(i, j, k) = 1.5;
          g->field(Field::kVelocityX)(i, j, k) = 0.1;
          g->field(Field::kVelocityY)(i, j, k) = 0.0;
          g->field(Field::kVelocityZ)(i, j, k) = 0.0;
        }
    g->store_old_fields();
  }
  h.rebuild(1, center_flagger(0.2));
  for (int l = 0; l <= h.deepest_level(); ++l) set_boundary_values(h, l);
  return h;
}

}  // namespace

TEST(Auditor, HealthyHierarchyPasses) {
  Hierarchy h = make_healthy_hierarchy();
  ASSERT_GE(h.deepest_level(), 1);
  const AuditReport r = analysis::audit_hierarchy(h);
  EXPECT_TRUE(r.passed()) << r.summary();
  EXPECT_GT(r.cells_checked, 0);
  EXPECT_GT(r.ghosts_checked, 0);
  EXPECT_GT(r.grids, 1u);
  EXPECT_GT(r.mass_total, 0.0);
  EXPECT_LT(r.max_rel_error, 1e-10);
}

TEST(Auditor, ProjectionCorruptionDetected) {
  Hierarchy h = make_healthy_hierarchy();
  ASSERT_GE(h.deepest_level(), 1);
  Grid* child = h.grids(1)[0];
  // Blow up one interior fine density cell: the parent cell covering it no
  // longer equals the conservative child average.
  child->field(Field::kDensity)(child->sx(1), child->sy(1), child->sz(1)) +=
      10.0;
  AuditOptions opts;
  opts.check_ghosts = false;  // the stale sibling copy is not under test
  const AuditReport r = analysis::audit_hierarchy(h, opts);
  EXPECT_FALSE(r.passed());
  EXPECT_GE(count_check(r, "projection"), 1u) << r.summary();
}

TEST(Auditor, OverlapAndMisalignmentDetected) {
  HierarchyParams p;
  p.root_dims = {16, 16, 16};
  Hierarchy h(p);
  h.build_root();
  Grid* root = h.grids(0)[0];
  for (Field f : root->field_list()) root->field(f).fill(1.0);
  auto add_child = [&](const IndexBox& box) {
    auto g = std::make_unique<Grid>(h.make_spec(1, box), p.fields);
    g->set_parent(root);
    for (Field f : g->field_list()) g->field(f).fill(1.0);
    h.insert_grid(std::move(g));
  };
  add_child({{4, 4, 4}, {12, 12, 12}});
  add_child({{10, 10, 10}, {16, 16, 16}});  // overlaps the first child
  add_child({{17, 2, 2}, {21, 6, 6}});      // lo odd: not parent-aligned
  AuditOptions opts;
  opts.check_ghosts = false;
  opts.check_projection = false;
  const AuditReport r = analysis::audit_hierarchy(h, opts);
  EXPECT_FALSE(r.passed());
  EXPECT_GE(count_check(r, "structure"), 2u) << r.summary();
}

TEST(Auditor, StaleGhostDetected) {
  HierarchyParams p;
  p.root_dims = {16, 16, 16};
  Hierarchy h(p);
  h.build_root(2);  // 8 tiles so sibling ghost exchange is exercised
  for (Grid* g : h.grids(0)) {
    for (Field f : g->field_list()) g->field(f).fill(1.0);
    g->store_old_fields();
  }
  set_boundary_values(h, 0);
  EXPECT_TRUE(analysis::audit_hierarchy(h).passed());
  // Change one tile's active corner cell after the fill: every neighbour
  // ghost copied from it is now stale.
  Grid* b = h.grids(0)[0];
  b->field(Field::kDensity)(b->sx(0), b->sy(0), b->sz(0)) = 5.0;
  const AuditReport r = analysis::audit_hierarchy(h);
  EXPECT_FALSE(r.passed());
  EXPECT_GE(count_check(r, "ghosts"), 1u) << r.summary();
}

TEST(Auditor, FluxRegisterMismatchDetected) {
  HierarchyParams p;
  p.root_dims = {16, 16, 16};
  Hierarchy h(p);
  h.build_root();
  Grid* root = h.grids(0)[0];
  for (Field f : root->field_list()) root->field(f).fill(1.0);
  auto child_ptr = std::make_unique<Grid>(
      h.make_spec(1, {{8, 8, 8}, {16, 16, 16}}), p.fields);
  child_ptr->set_parent(root);
  for (Field f : child_ptr->field_list()) child_ptr->field(f).fill(1.0);
  Grid* child = h.insert_grid(std::move(child_ptr));

  root->reset_fluxes();
  child->reset_boundary_fluxes();
  for (Field f : child->field_list())
    for (int d = 0; d < 3; ++d)
      for (int side = 0; side < 2; ++side) child->boundary_flux(f, d, side).fill(0.25);

  AuditOptions opts;
  opts.check_ghosts = false;
  opts.check_projection = false;
  // Registers carry flux the parent never saw: mismatch.
  AuditReport r = analysis::audit_hierarchy(h, opts);
  EXPECT_FALSE(r.passed());
  EXPECT_GE(count_check(r, "flux"), 1u) << r.summary();
  EXPECT_GT(r.faces_checked, 0);
  // Flux correction reconciles the parent's face fluxes with the registers;
  // afterwards the invariant holds.
  flux_correct_from_child(*child, *root);
  r = analysis::audit_hierarchy(h, opts);
  EXPECT_TRUE(r.passed()) << r.summary();
}

TEST(Auditor, ProjectionProductsHoldAfterProjection) {
  HierarchyParams p;
  p.root_dims = {16, 16, 16};
  Hierarchy h(p);
  h.build_root();
  Grid* root = h.grids(0)[0];
  for (Field f : root->field_list()) root->field(f).fill(1.0);
  auto child_ptr = std::make_unique<Grid>(
      h.make_spec(1, {{8, 8, 8}, {16, 16, 16}}), p.fields);
  child_ptr->set_parent(root);
  Grid* child = h.insert_grid(std::move(child_ptr));
  // Non-trivial child data so the mass weighting actually matters.
  for (int k = 0; k < child->nt(2); ++k)
    for (int j = 0; j < child->nt(1); ++j)
      for (int i = 0; i < child->nt(0); ++i) {
        child->field(Field::kDensity)(i, j, k) = 1.0 + 0.01 * i + 0.02 * j;
        child->field(Field::kVelocityX)(i, j, k) = 0.5 + 0.03 * k;
        child->field(Field::kVelocityY)(i, j, k) = -0.25;
        child->field(Field::kVelocityZ)(i, j, k) = 0.0;
        child->field(Field::kTotalEnergy)(i, j, k) = 2.0 + 0.01 * j;
        child->field(Field::kInternalEnergy)(i, j, k) = 1.0;
      }
  project_to_parent(*child, *root);
  AuditOptions opts;
  opts.check_ghosts = false;
  opts.check_projection_products = true;
  const AuditReport r = analysis::audit_hierarchy(h, opts);
  EXPECT_TRUE(r.passed()) << r.summary();
  // Corrupting a parent velocity inside the child-covered region [4,8)^3
  // breaks the conserved-product consistency that plain density projection
  // would not see.
  root->field(Field::kVelocityX)(root->sx(5), root->sy(5), root->sz(5)) += 1.0;
  const AuditReport r2 = analysis::audit_hierarchy(h, opts);
  EXPECT_FALSE(r2.passed());
  EXPECT_GE(count_check(r2, "projection"), 1u) << r2.summary();
}

TEST(Auditor, EscapedParticleDetected) {
  HierarchyParams p;
  p.root_dims = {8, 8, 8};
  Hierarchy h(p);
  h.build_root(2);
  Grid* g = h.grids(0)[0];
  for (Grid* t : h.grids(0))
    for (Field f : t->field_list()) t->field(f).fill(1.0);
  Particle esc;
  esc.x = {ext::pos_t(0.9), ext::pos_t(0.9), ext::pos_t(0.9)};  // outside tile 0
  esc.mass = 1.0;
  esc.id = 7;
  g->particles().push_back(esc);
  AuditOptions opts;
  opts.check_ghosts = false;
  const AuditReport r = analysis::audit_hierarchy(h, opts);
  EXPECT_FALSE(r.passed());
  EXPECT_GE(count_check(r, "particles"), 1u) << r.summary();
}

TEST(Auditor, NonFiniteFieldDetected) {
  HierarchyParams p;
  p.root_dims = {8, 8, 8};
  Hierarchy h(p);
  h.build_root();
  Grid* g = h.grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(1.0);
  g->store_old_fields();
  set_boundary_values(h, 0);
  g->field(Field::kTotalEnergy)(g->sx(3), g->sy(3), g->sz(3)) =
      std::numeric_limits<double>::quiet_NaN();
  const AuditReport r = analysis::audit_hierarchy(h);
  EXPECT_FALSE(r.passed());
  EXPECT_GE(count_check(r, "finite"), 1u) << r.summary();
}

TEST(Auditor, ConservationBaselineDriftDetected) {
  HierarchyParams p;
  p.root_dims = {8, 8, 8};
  Hierarchy h(p);
  h.build_root();
  Grid* g = h.grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(1.0);
  g->store_old_fields();
  set_boundary_values(h, 0);
  AuditOptions opts;
  const AuditReport r0 = analysis::audit_hierarchy(h, opts);
  EXPECT_TRUE(r0.passed());
  opts.mass_baseline = r0.mass_total;
  opts.energy_baseline = r0.energy_total;
  EXPECT_TRUE(analysis::audit_hierarchy(h, opts).passed());
  opts.mass_baseline = r0.mass_total * 1.5;
  const AuditReport r1 = analysis::audit_hierarchy(h, opts);
  EXPECT_FALSE(r1.passed());
  EXPECT_GE(count_check(r1, "conservation"), 1u) << r1.summary();
}

TEST(Auditor, ViolationCapCountsEverything) {
  Hierarchy h = make_healthy_hierarchy();
  ASSERT_GE(h.deepest_level(), 1);
  // Corrupt every child cell: far more violations than the record cap.
  for (Grid* c : h.grids(1)) c->field(Field::kDensity).add(c->field(Field::kDensity), 1.0);
  AuditOptions opts;
  opts.check_ghosts = false;
  opts.max_recorded = 8;
  const AuditReport r = analysis::audit_hierarchy(h, opts);
  EXPECT_FALSE(r.passed());
  EXPECT_EQ(r.violations.size(), 8u);
  EXPECT_GT(r.total_violations, 8u);
}

TEST(Auditor, SimulationHookAuditsEachRootStep) {
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {8, 8, 8};
  cfg.hierarchy.max_level = 1;
  cfg.refinement.overdensity_threshold = 1.5;
  cfg.audit_invariants = true;
  core::Simulation sim(cfg);
  sim.initialize(core::uniform_setup(1.0, 1.0));
  sim.advance_root_step();
  sim.advance_root_step();
  EXPECT_EQ(sim.audits_run(), 2);
  EXPECT_EQ(sim.audit_violations_total(), 0u) << sim.last_audit().summary();
  EXPECT_TRUE(sim.last_audit().passed());
}

TEST(Auditor, DeckKeyRoundTrips) {
  std::istringstream in(
      "ProblemType = Uniform\nAuditInvariants = 1\nAuditInterval = 3\n");
  const core::ParameterDeck deck = core::parse_parameter_deck(in);
  EXPECT_TRUE(deck.config.audit_invariants);
  EXPECT_EQ(deck.config.audit_interval, 3);
  const std::string rendered = core::render_deck(deck);
  EXPECT_NE(rendered.find("AuditInvariants = 1"), std::string::npos);
  EXPECT_NE(rendered.find("AuditInterval = 3"), std::string::npos);
}

TEST(Auditor, ReportingPublishesMetrics) {
  Hierarchy h = make_healthy_hierarchy();
  perf::StructuredLog::global().set_min_level(perf::LogLevel::kOff);
  const AuditReport r = analysis::audit_and_report(h);
  perf::StructuredLog::global().set_min_level(perf::LogLevel::kInfo);
  EXPECT_TRUE(r.passed());
  EXPECT_GE(perf::Registry::global().counter("audit.runs").value(), 1u);
}

TEST(Auditor, StaleTopologyCacheFlagged) {
  Hierarchy h = make_healthy_hierarchy();
  ASSERT_GE(h.deepest_level(), 1);
  // make_healthy_hierarchy filled boundaries, so the topology cache is
  // current and a plain audit passes.
  ASSERT_TRUE(h.topology_cache_generation().has_value());
  EXPECT_TRUE(analysis::audit_hierarchy(h).passed());
  // A structure mutation without a subsequent topology query leaves the
  // cache stale; the auditor must flag it *before* any check lazily
  // refreshes it.
  auto extra = std::make_unique<Grid>(
      h.make_spec(1, {{0, 0, 0}, {4, 4, 4}}), h.params().fields);
  extra->set_parent(h.grids(0)[0]);
  for (Field f : extra->field_list()) extra->field(f).fill(1.0);
  h.insert_grid(std::move(extra));
  ASSERT_NE(*h.topology_cache_generation(), h.generation());
  AuditOptions opts;
  // Isolate the staleness check: the injected grid has stale ghosts/fluxes.
  opts.check_ghosts = false;
  opts.check_projection = false;
  opts.check_flux_registers = false;
  const AuditReport r = analysis::audit_hierarchy(h, opts);
  EXPECT_FALSE(r.passed());
  EXPECT_GE(count_check(r, "topology"), 1u) << r.summary();
  // Disabled, the same hierarchy passes (structure etc. are clean).
  opts.check_topology = false;
  EXPECT_TRUE(analysis::audit_hierarchy(h, opts).passed());
  // A topology query refreshes the cache; the audit is clean again.
  opts.check_topology = true;
  (void)h.topology();
  EXPECT_TRUE(analysis::audit_hierarchy(h, opts).passed());
}
