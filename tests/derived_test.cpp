// Tests for the §6 derived quantities: cooling times, two-body relaxation,
// X-ray luminosity, inertia tensors, surface-density projections, and clump
// finding.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/derived.hpp"
#include "chemistry/chemistry.hpp"
#include "mesh/hierarchy.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;
namespace cn = enzo::constants;

namespace {
mesh::Hierarchy chem_box(int n) {
  mesh::HierarchyParams p;
  p.root_dims = {n, n, n};
  p.fields = mesh::chemistry_field_list();
  mesh::Hierarchy h(p);
  h.build_root();
  Grid* g = h.grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(0.0);
  g->field(Field::kDensity).fill(1.0);
  return h;
}

chemistry::ChemUnits units_n(double n_cgs) {
  chemistry::ChemUnits u;
  u.n_factor = n_cgs;
  u.rho_cgs = n_cgs * cn::kHydrogenMass;
  u.e_cgs = cn::kBoltzmann / cn::kHydrogenMass;
  u.time_s = 1.0;
  return u;
}

ext::PosVec center3(double x = 0.5) {
  return {ext::pos_t(x), ext::pos_t(x), ext::pos_t(x)};
}
}  // namespace

TEST(Derived, CoolingTimeScalesInverselyWithDensity) {
  chemistry::ChemistryParams cp;
  auto setup = [&](mesh::Hierarchy& h, double T) {
    Grid* g = h.grids(0)[0];
    chemistry::initialize_primordial_composition(*g, cp, 0.3, 0.0);
    for (int k = 0; k < g->nt(2); ++k)
      for (int j = 0; j < g->nt(1); ++j)
        for (int i = 0; i < g->nt(0); ++i) {
          const double mu = chemistry::cell_mu(*g, i, j, k);
          g->field(Field::kInternalEnergy)(i, j, k) =
              T / ((cp.gamma - 1.0) * mu);
        }
  };
  mesh::Hierarchy h1 = chem_box(8);
  setup(h1, 2e4);
  auto lo = analysis::cooling_time_in_sphere(h1, center3(), 0.4, cp,
                                             units_n(1.0));
  mesh::Hierarchy h2 = chem_box(8);
  setup(h2, 2e4);
  auto hi = analysis::cooling_time_in_sphere(h2, center3(), 0.4, cp,
                                             units_n(100.0));
  ASSERT_GT(lo.cells, 0);
  // Λ ∝ n², e·ρ ∝ n ⇒ t_cool ∝ 1/n: a factor 100 in density → ~100 in time.
  EXPECT_NEAR(lo.min / hi.min, 100.0, 20.0);
  EXPECT_NEAR(lo.mass_weighted_mean, lo.min, 1e-9 * lo.min);  // uniform box
}

TEST(Derived, RelaxationTimeGrowsWithParticleCount) {
  auto build = [&](int npart) {
    auto h = std::make_unique<mesh::Hierarchy>([] {
      mesh::HierarchyParams p;
      p.root_dims = {8, 8, 8};
      return p;
    }());
    h->build_root();
    Grid* g = h->grids(0)[0];
    for (Field f : g->field_list()) g->field(f).fill(1.0);
    util::Rng rng(3);
    for (int i = 0; i < npart; ++i) {
      mesh::Particle p;
      p.x = {ext::pos_t(0.4 + 0.2 * rng.uniform()),
             ext::pos_t(0.4 + 0.2 * rng.uniform()),
             ext::pos_t(0.4 + 0.2 * rng.uniform())};
      p.v = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
      p.mass = 1.0 / npart;
      g->particles().push_back(p);
    }
    return h;
  };
  auto h_small = build(100);
  auto h_big = build(10000);
  const double t_small =
      analysis::two_body_relaxation_time(*h_small, center3(), 0.3);
  const double t_big =
      analysis::two_body_relaxation_time(*h_big, center3(), 0.3);
  // t_relax ≈ N/(8 lnN) t_cross: 100× the particles → ~50× the time.
  EXPECT_GT(t_big / t_small, 20.0);
  EXPECT_LT(t_big / t_small, 200.0);
  // No particles → infinite (collisionless limit trivially satisfied).
  mesh::Hierarchy h0 = chem_box(8);
  EXPECT_TRUE(std::isinf(
      analysis::two_body_relaxation_time(h0, center3(), 0.3)));
}

TEST(Derived, XrayLuminosityTracksIonizedDenseGas) {
  chemistry::ChemistryParams cp;
  mesh::Hierarchy h = chem_box(8);
  Grid* g = h.grids(0)[0];
  chemistry::initialize_primordial_composition(*g, cp, 0.9, 0.0);
  for (int k = 0; k < g->nt(2); ++k)
    for (int j = 0; j < g->nt(1); ++j)
      for (int i = 0; i < g->nt(0); ++i)
        g->field(Field::kInternalEnergy)(i, j, k) = 1e6;  // hot
  const double l_cm = 3.0 * cn::kKpc;
  const double lum1 = analysis::xray_luminosity(h, center3(), 0.45, cp,
                                                units_n(0.01), l_cm);
  const double lum2 = analysis::xray_luminosity(h, center3(), 0.45, cp,
                                                units_n(0.1), l_cm);
  EXPECT_GT(lum1, 0.0);
  // Bremsstrahlung ∝ n²: 10× density → 100× luminosity.
  EXPECT_NEAR(lum2 / lum1, 100.0, 5.0);
  // Neutral gas emits (almost) nothing.
  mesh::Hierarchy hn = chem_box(8);
  Grid* gn = hn.grids(0)[0];
  chemistry::initialize_primordial_composition(*gn, cp, 1e-8, 0.0);
  for (int k = 0; k < gn->nt(2); ++k)
    for (int j = 0; j < gn->nt(1); ++j)
      for (int i = 0; i < gn->nt(0); ++i)
        gn->field(Field::kInternalEnergy)(i, j, k) = 1e6;
  const double lum_n = analysis::xray_luminosity(hn, center3(), 0.45, cp,
                                                 units_n(0.1), l_cm);
  EXPECT_LT(lum_n, 1e-10 * lum2);
}

TEST(Derived, InertiaTensorDistinguishesSphereFromPancake) {
  // Sphere of uniform density.
  mesh::Hierarchy hs = chem_box(16);
  Grid* gs = hs.grids(0)[0];
  gs->field(Field::kDensity).fill(1e-12);
  for (int k = 0; k < 16; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 16; ++i) {
        const double x = (i + 0.5) / 16 - 0.5, y = (j + 0.5) / 16 - 0.5,
                     z = (k + 0.5) / 16 - 0.5;
        if (x * x + y * y + z * z < 0.3 * 0.3)
          gs->field(Field::kDensity)(gs->sx(i), gs->sy(j), gs->sz(k)) = 1.0;
      }
  const auto ts = analysis::gas_inertia_tensor(hs, center3(), 0.45);
  EXPECT_GT(ts.sphericity(), 0.9);

  // Pancake: a thin slab.
  mesh::Hierarchy hp = chem_box(16);
  Grid* gp = hp.grids(0)[0];
  gp->field(Field::kDensity).fill(1e-12);
  for (int j = 0; j < 16; ++j)
    for (int i = 0; i < 16; ++i)
      gp->field(Field::kDensity)(gp->sx(i), gp->sy(j), gp->sz(8)) = 1.0;
  const auto tp = analysis::gas_inertia_tensor(hp, center3(), 0.45);
  EXPECT_LT(tp.sphericity(), 0.75);
  EXPECT_GT(tp.mass, 0.0);
}

TEST(Derived, SurfaceDensityConservesColumnMass) {
  mesh::Hierarchy h = chem_box(8);
  Grid* g = h.grids(0)[0];
  util::Rng rng(4);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i)
        g->field(Field::kDensity)(g->sx(i), g->sy(j), g->sz(k)) =
            1.0 + rng.uniform();
  const auto proj = analysis::surface_density(h, /*axis=*/2, /*n=*/8);
  // Each map pixel equals the column sum × dz.
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 8; ++i) {
      double col = 0;
      for (int k = 0; k < 8; ++k)
        col += g->field(Field::kDensity)(g->sx(i), g->sy(j), g->sz(k)) / 8.0;
      EXPECT_NEAR(proj.sigma[static_cast<std::size_t>(j) * 8 + i], col, 1e-12);
    }
  EXPECT_GE(proj.max, proj.min);
}

TEST(Derived, FindClumpsSeparatesAndMergesCorrectly) {
  mesh::Hierarchy h = chem_box(16);
  Grid* g = h.grids(0)[0];
  g->field(Field::kDensity).fill(0.5);
  // Two disjoint blobs, one larger.
  auto put = [&](int ci, int cj, int ck, int r, double rho) {
    for (int k = -r; k <= r; ++k)
      for (int j = -r; j <= r; ++j)
        for (int i = -r; i <= r; ++i)
          if (i * i + j * j + k * k <= r * r)
            g->field(Field::kDensity)(g->sx(ci + i), g->sy(cj + j),
                                      g->sz(ck + k)) = rho;
  };
  put(4, 4, 4, 2, 10.0);
  put(12, 12, 12, 1, 6.0);
  auto clumps = analysis::find_clumps(h, 2.0, /*map_level=*/0);
  ASSERT_EQ(clumps.size(), 2u);
  EXPECT_GT(clumps[0].mass, clumps[1].mass);
  EXPECT_DOUBLE_EQ(clumps[0].peak_density, 10.0);
  EXPECT_NEAR(ext::pos_to_double(clumps[0].center[0]), 4.5 / 16, 0.08);
  EXPECT_NEAR(ext::pos_to_double(clumps[1].center[0]), 12.5 / 16, 0.08);
  // A clump wrapping the periodic boundary stays one object.
  mesh::Hierarchy h2 = chem_box(16);
  Grid* g2 = h2.grids(0)[0];
  g2->field(Field::kDensity).fill(0.5);
  for (int di = -2; di <= 2; ++di)
    g2->field(Field::kDensity)(g2->sx((di + 16) % 16), g2->sy(8), g2->sz(8)) =
        5.0;
  auto wrapped = analysis::find_clumps(h2, 2.0, 0);
  ASSERT_EQ(wrapped.size(), 1u);
  EXPECT_EQ(wrapped[0].cells, 5);
  // Its center sits at the wrap point x≈0.
  const double cx = ext::pos_to_double(wrapped[0].center[0]);
  EXPECT_TRUE(cx < 0.1 || cx > 0.9);
}
