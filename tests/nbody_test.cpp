// N-body (adaptive particle-mesh) tests: CIC deposit partition of unity and
// mass conservation, kick/drag against closed forms, extended-precision
// drift, redistribution across the hierarchy, and a self-gravitating
// plane-wave oscillation sanity check.

#include <gtest/gtest.h>

#include <cmath>

#include "gravity/gravity.hpp"
#include "mesh/hierarchy.hpp"
#include "nbody/nbody.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;
using mesh::Particle;

namespace {
mesh::Hierarchy make_box(int n, int max_level = 2) {
  mesh::HierarchyParams p;
  p.root_dims = {n, n, n};
  p.max_level = max_level;
  mesh::Hierarchy h(p);
  h.build_root();
  for (Grid* g : h.grids(0)) {
    for (Field f : g->field_list())
      g->field(f).fill(f == Field::kDensity ? 1.0 : 0.0);
    g->allocate_gravity();
    g->store_old_fields();
  }
  return h;
}

Particle at(double x, double y, double z, double mass = 1.0) {
  Particle p;
  p.x = {ext::pos_t(x), ext::pos_t(y), ext::pos_t(z)};
  p.mass = mass;
  return p;
}
}  // namespace

TEST(Cic, DepositAtCellCenterIsDelta) {
  mesh::Hierarchy h = make_box(8);
  Grid* g = h.grids(0)[0];
  // Cell (2,2,2) center = (2.5/8); CIC at a cell center hits only that cell.
  g->particles().push_back(at(2.5 / 8, 2.5 / 8, 2.5 / 8, 3.0));
  g->gravitating_mass().fill(0.0);
  nbody::deposit_particles_cic(*g);
  const double cellvol = 1.0 / (8.0 * 8 * 8);
  EXPECT_NEAR(g->gravitating_mass()(2 + 1, 2 + 1, 2 + 1), 3.0 / cellvol,
              1e-9 / cellvol);
  double total = 0;
  for (const double v : g->gravitating_mass()) total += v;
  EXPECT_NEAR(total * cellvol, 3.0, 1e-12);
}

TEST(Cic, DepositSplitsLinearly) {
  mesh::Hierarchy h = make_box(8);
  Grid* g = h.grids(0)[0];
  // Particle a quarter-cell right of center of cell 2: weights 0.75 / 0.25
  // along x only.
  g->particles().push_back(at((2.5 + 0.25) / 8, 2.5 / 8, 2.5 / 8, 1.0));
  g->gravitating_mass().fill(0.0);
  nbody::deposit_particles_cic(*g);
  const double inv_vol = 8.0 * 8 * 8;
  EXPECT_NEAR(g->gravitating_mass()(3, 3, 3), 0.75 * inv_vol, 1e-9 * inv_vol);
  EXPECT_NEAR(g->gravitating_mass()(4, 3, 3), 0.25 * inv_vol, 1e-9 * inv_vol);
}

TEST(Cic, PeriodicWrapConservesMass) {
  mesh::Hierarchy h = make_box(8);
  Grid* g = h.grids(0)[0];
  // Particle just inside the low corner: its cloud wraps.
  g->particles().push_back(at(0.01, 0.01, 0.01, 2.0));
  g->gravitating_mass().fill(0.0);
  nbody::deposit_particles_cic(*g);
  const double cellvol = 1.0 / (8.0 * 8 * 8);
  double total = 0;
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i) total += g->gravitating_mass()(i + 1, j + 1, k + 1);
  EXPECT_NEAR(total * cellvol, 2.0, 1e-12);
  // Wrapped corner cell (7,7,7) received some of it.
  EXPECT_GT(g->gravitating_mass()(7 + 1, 7 + 1, 7 + 1), 0.0);
}

TEST(Nbody, KickMatchesUniformAcceleration) {
  mesh::Hierarchy h = make_box(8);
  Grid* g = h.grids(0)[0];
  g->acceleration(0).fill(2.0);
  g->acceleration(1).fill(0.0);
  g->acceleration(2).fill(-1.0);
  g->particles().push_back(at(0.5, 0.5, 0.5));
  nbody::kick_particles(*g, 0.25, /*adot_over_a=*/0.0);
  EXPECT_NEAR(g->particles()[0].v[0], 0.5, 1e-12);
  EXPECT_NEAR(g->particles()[0].v[2], -0.25, 1e-12);
}

TEST(Nbody, HubbleDragDecaysVelocity) {
  mesh::Hierarchy h = make_box(8);
  Grid* g = h.grids(0)[0];
  for (int d = 0; d < 3; ++d) g->acceleration(d).fill(0.0);
  Particle p = at(0.5, 0.5, 0.5);
  p.v = {1.0, 0, 0};
  g->particles().push_back(p);
  const double H = 0.2, dt = 0.01;
  for (int s = 0; s < 100; ++s) nbody::kick_particles(*g, dt, H);
  EXPECT_NEAR(g->particles()[0].v[0], std::exp(-H * 1.0), 2e-5);
}

TEST(Nbody, DriftMovesAndWraps) {
  mesh::Hierarchy h = make_box(8);
  Grid* g = h.grids(0)[0];
  Particle p = at(0.9, 0.5, 0.5);
  p.v = {0.4, 0, 0};
  g->particles().push_back(p);
  nbody::drift_particles(*g, 0.5, /*a=*/1.0);
  EXPECT_NEAR(ext::pos_to_double(g->particles()[0].x[0]), 0.1, 1e-12);
  // With a = 2 the comoving drift halves.
  Particle& q = g->particles()[0];
  q.x[0] = ext::pos_t(0.5);
  nbody::drift_particles(*g, 0.5, /*a=*/2.0);
  EXPECT_NEAR(ext::pos_to_double(q.x[0]), 0.6, 1e-12);
}

TEST(Nbody, DriftPreservesExtendedPrecision) {
  mesh::Hierarchy h = make_box(8);
  Grid* g = h.grids(0)[0];
  Particle p = at(1.0 / 3.0, 0.5, 0.5);
  const double v = std::ldexp(1.0, -60);  // sub-double-ulp step at x ~ 1/3
  p.v = {v, 0, 0};
  g->particles().push_back(p);
  const ext::pos_t x0 = g->particles()[0].x[0];
  for (int s = 0; s < 1000; ++s) nbody::drift_particles(*g, 1.0, 1.0);
  const ext::pos_t moved = g->particles()[0].x[0] - x0;
  EXPECT_NEAR(moved.to_double() / (1000.0 * v), 1.0, 1e-12);
}

TEST(Nbody, ParticleTimestepLimitsCellCrossing) {
  mesh::Hierarchy h = make_box(16);
  Grid* g = h.grids(0)[0];
  Particle p = at(0.5, 0.5, 0.5);
  p.v = {2.0, 0.5, 0};
  g->particles().push_back(p);
  const double dt = nbody::particle_timestep(*g, /*a=*/1.0, 0.4);
  EXPECT_NEAR(dt, 0.4 * (1.0 / 16) / 2.0, 1e-12);
}

TEST(Nbody, RedistributeFindsFinestOwner) {
  mesh::HierarchyParams hp;
  hp.root_dims = {16, 16, 16};
  hp.max_level = 1;
  mesh::Hierarchy h(hp);
  h.build_root();
  Grid* root = h.grids(0)[0];
  for (Field f : root->field_list())
    root->field(f).fill(f == Field::kDensity ? 1.0 : 0.0);
  root->store_old_fields();
  auto child = std::make_unique<Grid>(
      h.make_spec(1, {{12, 12, 12}, {20, 20, 20}}), hp.fields);
  child->set_parent(root);
  Grid* c = h.insert_grid(std::move(child));
  // A root particle that has drifted into the child's region.
  root->particles().push_back(at(0.5, 0.5, 0.5));
  // A child particle that has drifted out of the child.
  c->particles().push_back(at(0.1, 0.1, 0.1));
  nbody::redistribute_particles(h);
  ASSERT_EQ(c->particles().size(), 1u);
  ASSERT_EQ(root->particles().size(), 1u);
  EXPECT_NEAR(ext::pos_to_double(c->particles()[0].x[0]), 0.5, 1e-12);
  EXPECT_NEAR(ext::pos_to_double(root->particles()[0].x[0]), 0.1, 1e-12);
  EXPECT_EQ(nbody::total_particles(h), 2u);
}

TEST(Nbody, LatticeCreationStatistics) {
  mesh::Hierarchy h = make_box(8);
  Grid* g = h.grids(0)[0];
  std::array<util::Array3<double>, 3> psi;
  for (auto& a : psi) a.resize(8, 8, 8, 0.0);
  psi[0](0, 0, 0) = 0.01;  // one displaced particle
  nbody::create_lattice_particles(*g, 8, psi, /*growth=*/1.0, /*vfac=*/2.0,
                                  /*total_mass=*/1.0);
  EXPECT_EQ(g->particles().size(), 512u);
  EXPECT_NEAR(nbody::total_particle_mass(h), 1.0, 1e-12);
  // First particle displaced by 0.01 with velocity 0.02.
  EXPECT_NEAR(ext::pos_to_double(g->particles()[0].x[0]), 0.5 / 8 + 0.01,
              1e-12);
  EXPECT_NEAR(g->particles()[0].v[0], 0.02, 1e-12);
  // Uniform lattice deposits to (nearly) uniform density = total mass.
  g->gravitating_mass().fill(0.0);
  // Zero the displacement effect by resetting positions? No — deposit as-is
  // and check the mean instead.
  nbody::deposit_particles_cic(*g);
  double mean = 0;
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i) mean += g->gravitating_mass()(i + 1, j + 1, k + 1);
  mean /= 512.0;
  EXPECT_NEAR(mean, 1.0, 1e-9);
}

TEST(Nbody, PlaneWaveCollapseAcceleratesTowardOverdensity) {
  // Self-consistency: deposit a sinusoidally perturbed particle lattice,
  // solve gravity, and verify particles are pulled toward the overdensity.
  const int n = 16;
  mesh::Hierarchy h = make_box(n);
  Grid* g = h.grids(0)[0];
  std::array<util::Array3<double>, 3> psi;
  for (auto& a : psi) a.resize(n, n, n, 0.0);
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        psi[0](i, j, k) = -0.02 * std::sin(2 * M_PI * (i + 0.5) / n);
  nbody::create_lattice_particles(*g, n, psi, 1.0, 0.0, 1.0);
  // δ = −∂ψ/∂x ∝ +cos(2πx): overdensity at x = 0.
  gravity::begin_gravitating_mass(h, 0);
  g->gravitating_mass().fill(0.0);
  nbody::deposit_particles_cic(*g);
  gravity::GravityParams gp;
  gravity::solve_root_gravity(h, gp, 1.0);
  gravity::compute_accelerations(*g, 1.0);
  // Acceleration just right of x=0 must point left (toward x=0).
  EXPECT_LT(g->acceleration(0)(3, n / 2, n / 2), 0.0);
  EXPECT_GT(g->acceleration(0)(n - 4, n / 2, n / 2), 0.0);
  // Kick: particles near x=0.25 gain leftward velocity.
  nbody::kick_particles(*g, 0.1, 0.0);
  double mean_v = 0;
  int cnt = 0;
  for (const Particle& p : g->particles()) {
    const double x = ext::pos_to_double(p.x[0]);
    if (x > 0.15 && x < 0.35) {
      mean_v += p.v[0];
      ++cnt;
    }
  }
  EXPECT_LT(mean_v / cnt, 0.0);
}
