// Integration tests of the Simulation driver: W-cycle ordering and exact
// (extended-precision) time landing, uniform-state stability through the
// full stack, AMR Sod tube against the unigrid solution, mass conservation
// through flux correction + projection, cosmological expansion of a uniform
// box against closed forms, the Zel'dovich pancake against linear theory,
// and a self-gravitating collapse driving the hierarchy deeper.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "analysis/analysis.hpp"
#include "core/setup.hpp"
#include "core/simulation.hpp"
#include "util/constants.hpp"

using namespace enzo;
using core::Simulation;
using core::SimulationConfig;
using mesh::Field;
using mesh::Grid;

namespace {

SimulationConfig base_config(mesh::Index3 dims, int max_level) {
  SimulationConfig cfg;
  cfg.hierarchy.root_dims = dims;
  cfg.hierarchy.max_level = max_level;
  return cfg;
}

double total_root_mass(Simulation& sim) {
  double m = 0;
  for (Grid* g : sim.hierarchy().grids(0)) {
    double vol = 1.0;
    for (int d = 0; d < 3; ++d)
      vol *= 1.0 / static_cast<double>(g->spec().level_dims[d]);
    for (int k = 0; k < g->nx(2); ++k)
      for (int j = 0; j < g->nx(1); ++j)
        for (int i = 0; i < g->nx(0); ++i)
          m += g->field(Field::kDensity)(g->sx(i), g->sy(j), g->sz(k)) * vol;
  }
  return m;
}

}  // namespace

TEST(Simulation, UniformStateStaysUniform) {
  SimulationConfig cfg = base_config({8, 8, 8}, 0);
  Simulation sim(cfg);
  sim.initialize(core::uniform_setup(2.0, 1.5));
  for (int s = 0; s < 3; ++s) sim.advance_root_step();
  for (Grid* g : sim.hierarchy().grids(0))
    for (int i = 0; i < 8; ++i)
      EXPECT_NEAR(g->field(Field::kDensity)(g->sx(i), g->sy(i), g->sz(i)),
                  2.0, 1e-12);
  EXPECT_EQ(sim.root_steps_taken(), 3);
  EXPECT_GT(sim.time_d(), 0.0);
}

TEST(Simulation, WcycleOrderingMatchesFigure2) {
  // Static two-level hierarchy: each root step must be followed by exactly
  // r child steps that "catch up", i.e. the paper's W ordering.
  SimulationConfig cfg = base_config({16, 16, 16}, 1);
  cfg.trace_wcycle = true;
  Simulation sim(cfg);
  sim.add_static_region(1, {{12, 12, 12}, {20, 20, 20}});
  sim.initialize(core::uniform_setup(1.0, 1.0));
  ASSERT_EQ(sim.hierarchy().deepest_level(), 1);
  sim.advance_root_step();
  const auto& tr = sim.trace();
  ASSERT_GE(tr.size(), 3u);
  EXPECT_EQ(tr[0].level, 0);
  // All remaining events this step are level-1 catch-ups, consecutive in
  // time, summing exactly to the root dt.
  double child_sum = 0;
  for (std::size_t i = 1; i < tr.size(); ++i) {
    EXPECT_EQ(tr[i].level, 1);
    EXPECT_NEAR(tr[i].t0, tr[0].t0 + child_sum, 1e-12);
    child_sum += tr[i].dt;
  }
  EXPECT_NEAR(child_sum, tr[0].dt, 1e-12);
  // Exact landing (extended precision): child time == parent time.
  Grid* root = sim.hierarchy().grids(0)[0];
  Grid* child = sim.hierarchy().grids(1)[0];
  EXPECT_TRUE(child->time() == root->time());
}

TEST(Simulation, ThreeLevelWcycleIsNested) {
  SimulationConfig cfg = base_config({16, 16, 16}, 2);
  cfg.trace_wcycle = true;
  cfg.rebuild_interval = 1 << 20;  // keep the static tree fixed
  Simulation sim(cfg);
  sim.add_static_region(1, {{8, 8, 8}, {24, 24, 24}});
  sim.add_static_region(2, {{24, 24, 24}, {40, 40, 40}});
  sim.initialize(core::uniform_setup(1.0, 1.0));
  ASSERT_EQ(sim.hierarchy().deepest_level(), 2);
  sim.advance_root_step();
  // Every level-1 event must be followed by its level-2 catch-ups before the
  // next level-1 event (the W pattern).
  const auto& tr = sim.trace();
  int last_level = -1;
  for (const auto& e : tr) {
    if (e.level == 2) {
      EXPECT_EQ(last_level >= 1, true);
    }
    last_level = e.level;
  }
  // Times land exactly across all levels.
  EXPECT_TRUE(sim.hierarchy().grids(2)[0]->time() ==
              sim.hierarchy().grids(0)[0]->time());
  sim.hierarchy().check_invariants();
}

TEST(Simulation, SodTubeThroughDriver) {
  SimulationConfig cfg = base_config({128, 1, 1}, 0);
  cfg.hydro.gamma = 1.4;
  Simulation sim(cfg);
  sim.initialize(core::sod_tube_setup());
  sim.evolve_until(0.15, 4000);
  EXPECT_NEAR(sim.time_d(), 0.15, 1e-12);
  Grid* g = sim.hierarchy().grids(0)[0];
  // Shock plateau: exact density 0.2656 on x ∈ (0.64, 0.76) at t = 0.15.
  const int i = static_cast<int>(0.70 * 128);
  EXPECT_NEAR(g->field(Field::kDensity)(g->sx(i), 0, 0), 0.2656, 0.035);
  // Contact plateau near x = 0.62: exact 0.4263.
  const int ic = static_cast<int>(0.60 * 128);
  EXPECT_NEAR(g->field(Field::kDensity)(g->sx(ic), 0, 0), 0.4263, 0.05);
}

TEST(Simulation, AmrSodMatchesUnigrid) {
  // Refine the diaphragm region statically; the refined run must track the
  // unigrid solution (flux correction + projection keep them consistent).
  SimulationConfig cfg = base_config({64, 1, 1}, 1);
  cfg.hydro.gamma = 1.4;
  cfg.rebuild_interval = 1 << 20;
  Simulation amr(cfg);
  amr.add_static_region(1, {{48, 0, 0}, {80, 1, 1}});
  amr.initialize(core::sod_tube_setup());
  ASSERT_EQ(amr.hierarchy().deepest_level(), 1);
  amr.evolve_until(0.12, 4000);

  SimulationConfig ucfg = base_config({64, 1, 1}, 0);
  ucfg.hydro.gamma = 1.4;
  Simulation uni(ucfg);
  uni.initialize(core::sod_tube_setup());
  uni.evolve_until(0.12, 4000);

  Grid* ga = amr.hierarchy().grids(0)[0];
  Grid* gu = uni.hierarchy().grids(0)[0];
  double l1 = 0;
  for (int i = 0; i < 64; ++i)
    l1 += std::abs(ga->field(Field::kDensity)(ga->sx(i), 0, 0) -
                   gu->field(Field::kDensity)(gu->sx(i), 0, 0));
  EXPECT_LT(l1 / 64, 0.01);
}

TEST(Simulation, MassConservedThroughRefinedEvolution) {
  // Periodic box with a dense blob and a dynamically-refined region: the
  // root-level mass integral (kept consistent by projection + flux
  // correction) must be conserved.
  SimulationConfig cfg = base_config({16, 16, 16}, 1);
  cfg.refinement.overdensity_threshold = 2.0;
  Simulation sim(cfg);
  sim.build_root();
  Grid* g = sim.hierarchy().grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(0.0);
  const auto rho = g->field(Field::kDensity);
  for (int k = 0; k < 16; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 16; ++i) {
        const double x = (i + 0.5) / 16 - 0.5, y = (j + 0.5) / 16 - 0.5,
                     z = (k + 0.5) / 16 - 0.5;
        rho(g->sx(i), g->sy(j), g->sz(k)) =
            1.0 + 5.0 * std::exp(-(x * x + y * y + z * z) / 0.02);
      }
  g->field(Field::kInternalEnergy).fill(1.0);
  g->field(Field::kTotalEnergy).fill(1.0);
  sim.finalize_setup();
  ASSERT_GE(sim.hierarchy().deepest_level(), 1);
  const double m0 = total_root_mass(sim);
  for (int s = 0; s < 3; ++s) sim.advance_root_step();
  const double m1 = total_root_mass(sim);
  EXPECT_NEAR(m1, m0, 2e-5 * m0);
  sim.hierarchy().check_invariants();
}

TEST(Simulation, UniformComovingBoxFollowsAdiabaticExpansion) {
  SimulationConfig cfg = base_config({8, 8, 8}, 0);
  cfg.comoving = true;
  cfg.frw.hubble = 0.5;
  cfg.frw.omega_matter = 1.0;
  cfg.frw.omega_baryon = 1.0;  // pure gas
  cfg.initial_redshift = 99.0;
  cfg.enable_gravity = true;
  Simulation sim(cfg);
  core::CosmologySetupOptions opt;
  opt.box_comoving_cm = 2.0 * constants::kMpc;
  opt.seed = 1;
  Simulation* s = &sim;
  // Zero out perturbations by hand after setup for a clean uniform test.
  s->initialize(core::cosmological_setup(opt));
  for (Grid* g : sim.hierarchy().grids(0)) {
    g->field(Field::kDensity).fill(1.0);
    g->field(Field::kVelocityX).fill(0.0);
    g->field(Field::kVelocityY).fill(0.0);
    g->field(Field::kVelocityZ).fill(0.0);
    // Rebuild total energy so no stale kinetic term perturbs the pressure.
    const auto etot = g->field(Field::kTotalEnergy);
    const auto eint = g->field(Field::kInternalEnergy);
    std::copy(eint.begin(), eint.end(), etot.begin());
    g->store_old_fields();
  }
  const double a0 = sim.scale_factor();
  const double e0 = sim.hierarchy()
                        .grids(0)[0]
                        ->field(Field::kInternalEnergy)(4, 4, 4);
  for (int i = 0; i < 40; ++i) sim.advance_root_step();
  const double a1 = sim.scale_factor();
  EXPECT_GT(a1, 1.5 * a0);  // the box expanded substantially
  const double e1 = sim.hierarchy()
                        .grids(0)[0]
                        ->field(Field::kInternalEnergy)(
                            sim.hierarchy().grids(0)[0]->sx(4),
                            sim.hierarchy().grids(0)[0]->sy(4),
                            sim.hierarchy().grids(0)[0]->sz(4));
  // e ∝ a^{-2} for γ = 5/3.
  EXPECT_NEAR(e1 / e0, std::pow(a1 / a0, -2.0), 0.03 * std::pow(a1 / a0, -2.0));
  // Density stayed uniform (comoving).
  EXPECT_NEAR(sim.hierarchy().grids(0)[0]->field(Field::kDensity)(
                  sim.hierarchy().grids(0)[0]->sx(4), 5, 6),
              1.0, 1e-6);
}

TEST(Simulation, ZeldovichPancakeGrowsPerLinearTheory) {
  SimulationConfig cfg = base_config({64, 1, 1}, 0);
  cfg.comoving = true;
  cfg.frw.hubble = 0.5;
  cfg.frw.omega_matter = 1.0;
  cfg.frw.omega_baryon = 1.0;
  cfg.initial_redshift = 30.0;
  Simulation sim(cfg);
  core::PancakeOptions opt;
  opt.a_caustic_redshift = 5.0;
  sim.initialize(core::zeldovich_pancake_setup(opt));
  const double a_i = sim.scale_factor();
  Grid* g = sim.hierarchy().grids(0)[0];
  // Amplitude of the fundamental Fourier mode — the observable that follows
  // linear theory while the peak contrast already grows super-linearly
  // (Zel'dovich: δ_peak = (1−D/D_c)⁻¹ − 1).
  auto mode_amplitude = [&] {
    double re = 0, im = 0;
    for (int i = 0; i < 64; ++i) {
      const double d = g->field(Field::kDensity)(g->sx(i), 0, 0) - 1.0;
      re += d * std::cos(2 * M_PI * (i + 0.5) / 64);
      im += d * std::sin(2 * M_PI * (i + 0.5) / 64);
    }
    return std::sqrt(re * re + im * im) / 64;
  };
  auto peak_delta = [&] {
    double dmax = 0;
    for (int i = 0; i < 64; ++i)
      dmax = std::max(dmax,
                      g->field(Field::kDensity)(g->sx(i), 0, 0) - 1.0);
    return dmax;
  };
  const double m0 = mode_amplitude();
  const double d0 = peak_delta();
  // Evolve to a = 2 a_i (still linear: caustic at z=5 → a=1/6 >> 2 a_i).
  cosmology::Frw frw(cfg.frw);
  const double t_target = frw.time_of_a(2.0 * a_i) / cfg.units.time_s;
  // cfg.units was filled during setup:
  const double t_target2 =
      frw.time_of_a(2.0 * a_i) / sim.config().units.time_s;
  (void)t_target;
  sim.evolve_until(t_target2, 4000);
  g = sim.hierarchy().grids(0)[0];
  EXPECT_NEAR(sim.scale_factor(), 2.0 * a_i, 0.03 * a_i);
  // EdS linear theory: the fundamental mode doubles with a.
  EXPECT_NEAR(mode_amplitude() / m0, 2.0, 0.3);
  // Peak contrast grows *super*-linearly (between linear and the exact
  // Zel'dovich (1−D/D_c)⁻¹−1 rate ≈ 3.3×).
  const double d1 = peak_delta();
  EXPECT_GT(d1 / d0, 2.0);
  EXPECT_LT(d1 / d0, 3.6);
}

TEST(Simulation, CollapseDeepensHierarchyAndRaisesDensity) {
  SimulationConfig cfg = base_config({16, 16, 16}, 2);
  cfg.hierarchy.fields = mesh::chemistry_field_list();
  cfg.refinement.baryon_mass_threshold = 4.0 / (16.0 * 16 * 16);
  cfg.refinement.jeans_number = 4.0;
  cfg.enable_chemistry = false;  // pure hydro+gravity collapse (fast test)
  Simulation sim(cfg);
  core::CollapseSetupOptions opt;
  opt.chemistry = false;
  opt.overdensity = 20.0;
  opt.mean_density_cgs = 1e-19;
  opt.box_proper_cm = 4.0 * constants::kParsec;
  opt.cloud_radius = 0.25;
  opt.temperature = 100.0;
  sim.initialize(core::collapse_cloud_setup(opt));
  const double rho0 = analysis::find_densest_point(sim.hierarchy()).density;
  // Several free-fall times in code units.
  for (int s = 0; s < 10; ++s) sim.advance_root_step();
  const auto peak = analysis::find_densest_point(sim.hierarchy());
  EXPECT_GT(peak.density, 1.5 * rho0);  // contraction under way
  EXPECT_GE(sim.hierarchy().deepest_level(), 1);
  sim.hierarchy().check_invariants();
  // The peak is near the box center.
  EXPECT_NEAR(ext::pos_to_double(peak.position[0]), 0.5, 0.15);
}
