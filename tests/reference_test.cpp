// Analytic reference solutions (analysis/reference.hpp) and the small-N
// regression gates that run in the default tier-1 suite: exact Riemann
// star-region values, Sedov blast coefficients, Zel'dovich map identities,
// the evolve_until stop-time contract (bit-identical end times across
// resolutions), and a cheap Sod convergence check.  The full-resolution
// sweeps live in tests/regression_test.cpp under `ctest -L regression`.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "analysis/reference.hpp"
#include "core/parameter_file.hpp"
#include "core/simulation.hpp"
#include "problems/registry.hpp"
#include "util/constants.hpp"

using namespace enzo;

namespace {

core::ParameterDeck parse(const std::string& text) {
  std::istringstream in(text);
  return core::parse_parameter_deck(in);
}

core::Simulation run_problem(const std::string& deck_text, double t_stop) {
  auto deck = parse(deck_text);
  core::Simulation sim(deck.config);
  core::setup_from_deck(sim, deck);
  sim.evolve_until(t_stop, 1 << 20);
  return sim;
}

std::string sod_deck(int n, const std::string& problem = "SodTube") {
  std::string text = "ProblemType = " + problem +
                     "\nTopGridDimensions = " + std::to_string(n) +
                     " 1 1\nGamma = 1.4\n";
  if (problem == "SodTubeSMR") text += "MaximumRefinementLevel = 1\n";
  return text;
}

double sod_l1(int n, double t_stop, const std::string& problem = "SodTube") {
  auto deck = parse(sod_deck(n, problem));
  core::Simulation sim(deck.config);
  core::setup_from_deck(sim, deck);
  sim.evolve_until(t_stop, 1 << 20);
  return problems::Registry::global().at(problem).l1_density_error(sim, deck);
}

}  // namespace

// ---- exact Riemann solution -----------------------------------------------

TEST(RiemannReference, SodStarState) {
  analysis::RiemannStates s;  // defaults are the Sod tube
  const auto star = analysis::solve_riemann_star(s);
  EXPECT_NEAR(star.p, 0.303130, 1e-5);
  EXPECT_NEAR(star.u, 0.927453, 1e-5);
}

TEST(RiemannReference, SampledWaveStructure) {
  analysis::RiemannStates s;
  // Far field: the untouched initial states.
  EXPECT_DOUBLE_EQ(analysis::sample_riemann(s, -10.0).rho, 1.0);
  EXPECT_DOUBLE_EQ(analysis::sample_riemann(s, 10.0).rho, 0.125);
  // Either side of the contact (u* ~= 0.9275): the rarefied left state and
  // the shocked right state.
  EXPECT_NEAR(analysis::sample_riemann(s, 0.90).rho, 0.42632, 1e-4);
  EXPECT_NEAR(analysis::sample_riemann(s, 0.95).rho, 0.26557, 1e-4);
  // The solution is continuous at the head of the left fan (xi = -c_l).
  const double c_l = std::sqrt(s.gamma * s.p_l / s.rho_l);
  EXPECT_NEAR(analysis::sample_riemann(s, -c_l + 1e-9).rho, 1.0, 1e-6);
  // Pressure and velocity are continuous across the contact.
  EXPECT_NEAR(analysis::sample_riemann(s, 0.90).p,
              analysis::sample_riemann(s, 0.95).p, 1e-10);
  EXPECT_NEAR(analysis::sample_riemann(s, 0.90).u,
              analysis::sample_riemann(s, 0.95).u, 1e-10);
}

// ---- Sedov-Taylor similarity solution -------------------------------------

TEST(SedovReference, BlastCoefficients) {
  // Landau-Lifshitz / Sedov tabulated values.
  EXPECT_NEAR(analysis::SedovSolution(1.4).beta(), 1.0328, 2e-3);
  EXPECT_NEAR(analysis::SedovSolution(5.0 / 3.0).beta(), 1.1517, 2e-3);
}

TEST(SedovReference, ShockJumpAndAmbient) {
  analysis::SedovSolution s(1.4);
  // Strong-shock jump at xi = 1: rho/rho0 = (gamma+1)/(gamma-1) = 6.
  EXPECT_NEAR(s.density_ratio(1.0), 6.0, 1e-6);
  EXPECT_LE(s.density_ratio(0.9), s.density_ratio(1.0));
  EXPECT_LE(s.density_ratio(0.5), s.density_ratio(0.9));

  const double t = 0.05, energy = 1.0, rho0 = 1.0;
  const double rs = s.shock_radius(t, energy, rho0);
  EXPECT_NEAR(rs, s.beta() * std::pow(energy * t * t / rho0, 0.2), 1e-12);
  EXPECT_DOUBLE_EQ(s.density(1.1 * rs, t, energy, rho0), rho0);
  EXPECT_NEAR(s.density(0.999 * rs, t, energy, rho0), 6.0 * rho0, 0.1);
}

// ---- Zel'dovich pancake ---------------------------------------------------

TEST(ZeldovichReference, MapInversionAndDensity) {
  analysis::ZeldovichMode m;
  m.amplitude = 0.1;
  m.growth = 0.5;  // D * 2 pi A ~= 0.31: safely pre-caustic
  for (int i = 0; i < 64; ++i) {
    const double q = (i + 0.5) / 64.0;
    const double psi = -m.amplitude * std::sin(constants::kTwoPi * q);
    double x = q + m.growth * psi;
    x -= std::floor(x);
    EXPECT_NEAR(analysis::zeldovich_lagrangian_q(m, x), q, 1e-10);
    const double dxdq = 1.0 - m.growth * m.amplitude * constants::kTwoPi *
                                  std::cos(constants::kTwoPi * q);
    EXPECT_NEAR(analysis::zeldovich_delta(m, x), 1.0 / dxdq - 1.0, 1e-9);
    EXPECT_NEAR(analysis::zeldovich_psi(m, x), psi, 1e-10);
  }
}

// ---- evolve_until stop-time contract --------------------------------------

// The bug this pins down: the final step used to leave a resolution-dependent
// fp residue (or take a denormal-tiny extra step), so runs of the same
// problem at different resolutions ended at different times.  evolve_until
// must land every resolution on exactly dd(t_stop).
TEST(EvolveUntil, EndTimeBitIdenticalAcrossResolutions) {
  const double t_stop = 0.1;
  auto a = run_problem(sod_deck(32), t_stop);
  auto b = run_problem(sod_deck(48), t_stop);
  EXPECT_TRUE(a.time() == ext::pos_t(t_stop));
  EXPECT_TRUE(b.time() == ext::pos_t(t_stop));
  EXPECT_EQ(a.time_d(), b.time_d());

  // Arrival is idempotent: a second call takes no further steps.
  const long steps = a.root_steps_taken();
  a.evolve_until(t_stop, 1 << 20);
  EXPECT_EQ(a.root_steps_taken(), steps);
}

TEST(EvolveUntil, AwkwardStopTimeLandsExactly) {
  // A stop time with no short binary representation, at two resolutions.
  const double t_stop = 0.1 / 3.0;
  auto a = run_problem(sod_deck(32), t_stop);
  auto b = run_problem(sod_deck(64), t_stop);
  EXPECT_TRUE(a.time() == ext::pos_t(t_stop));
  EXPECT_TRUE(a.time() == b.time());
}

// ---- small-N convergence gates --------------------------------------------

TEST(ConvergenceSmallN, SodFirstOrder) {
  const double t = 0.1;
  const double e32 = sod_l1(32, t);
  const double e64 = sod_l1(64, t);
  EXPECT_LT(e64, 0.03);
  const double order = std::log2(e32 / e64);
  EXPECT_GT(order, 0.5);
  EXPECT_LT(order, 1.8);
}

TEST(ConvergenceSmallN, SodSMRNoWorseThanUnigrid) {
  const double t = 0.1;
  const double e_uni = sod_l1(32, t);
  const double e_smr = sod_l1(32, t, "SodTubeSMR");
  // Refining the middle half of the tube must not hurt the root-level
  // solution (children project back conservatively).
  EXPECT_LT(e_smr, e_uni * 1.05);
}
