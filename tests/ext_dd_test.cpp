// Tests for the double–double extended precision arithmetic (§3.5 substrate).
//
// The property sweeps exercise the error-free-transform identities at many
// magnitudes; the "SDR" tests demonstrate the paper's requirement directly:
// distinguishing x and x+Δx with Δx/x ~ 1e-12 and headroom to ~1e-14, which
// plain double cannot do through a chain of operations.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ext/dd.hpp"
#include "ext/position.hpp"

using enzo::ext::dd;
namespace ext = enzo::ext;

TEST(Dd, ConstructionAndConversion) {
  dd a(1.5);
  EXPECT_DOUBLE_EQ(a.hi, 1.5);
  EXPECT_DOUBLE_EQ(a.lo, 0.0);
  EXPECT_DOUBLE_EQ(a.to_double(), 1.5);
  dd b = dd::from_int(1234567890123456789LL);
  // from_int is exact: reconstruct the integer.
  const long long reconstructed =
      static_cast<long long>(b.hi) + static_cast<long long>(b.lo);
  EXPECT_EQ(reconstructed, 1234567890123456789LL);
}

TEST(Dd, AdditionCapturesRoundoff) {
  // 1 + 2^-80 is invisible to double but exact in dd.
  const double tiny = std::ldexp(1.0, -80);
  dd s = dd(1.0) + dd(tiny);
  EXPECT_DOUBLE_EQ(s.hi, 1.0);
  EXPECT_DOUBLE_EQ(s.lo, tiny);
  dd back = s - dd(1.0);
  EXPECT_DOUBLE_EQ(back.to_double(), tiny);
}

TEST(Dd, MultiplicationExactProducts) {
  // (1 + 2^-30)² = 1 + 2^-29 + 2^-60 — the 2^-60 term must survive.
  const double e = std::ldexp(1.0, -30);
  dd x = dd(1.0) + dd(e);
  dd sq = x * x;
  dd expected = dd(1.0) + dd(std::ldexp(1.0, -29)) + dd(std::ldexp(1.0, -60));
  EXPECT_EQ(sq.hi, expected.hi);
  EXPECT_NEAR(sq.lo, expected.lo, 1e-30);
}

TEST(Dd, DivisionRoundTrip) {
  dd a(3.0), b(7.0);
  dd q = a / b;
  dd r = q * b - a;
  EXPECT_LT(std::abs(r.to_double()), 10 * dd::epsilon() * 3.0);
}

TEST(Dd, SqrtNewton) {
  dd two(2.0);
  dd r = ext::sqrt(two);
  dd err = r * r - two;
  EXPECT_LT(std::abs(err.to_double()), 10 * dd::epsilon() * 2.0);
  EXPECT_DOUBLE_EQ(ext::sqrt(dd(0.0)).to_double(), 0.0);
}

TEST(Dd, Comparisons) {
  dd one(1.0);
  dd one_plus = one + dd(std::ldexp(1.0, -100));
  EXPECT_TRUE(one < one_plus);
  EXPECT_TRUE(one_plus > one);
  EXPECT_TRUE(one != one_plus);
  EXPECT_TRUE(one <= one);
  EXPECT_TRUE(one >= one);
  EXPECT_TRUE(-one_plus < -one);
}

TEST(Dd, FloorExactOnIntegralHi) {
  dd x(3.0, -std::ldexp(1.0, -70));  // slightly below 3
  EXPECT_DOUBLE_EQ(ext::floor(x).to_double(), 2.0);
  dd y(3.0, std::ldexp(1.0, -70));  // slightly above 3
  EXPECT_DOUBLE_EQ(ext::floor(y).to_double(), 3.0);
  EXPECT_DOUBLE_EQ(ext::floor(dd(2.75)).to_double(), 2.0);
  EXPECT_DOUBLE_EQ(ext::floor(dd(-2.25)).to_double(), -3.0);
}

TEST(Dd, FmodPosWrapsIntoRange) {
  dd period(1.0);
  dd x(3.25);
  EXPECT_NEAR(ext::fmod_pos(x, period).to_double(), 0.25, 1e-30);
  dd y(-0.25);
  EXPECT_NEAR(ext::fmod_pos(y, period).to_double(), 0.75, 1e-30);
}

TEST(Dd, PowiMatchesRepeatedMultiply) {
  dd base(1.0 + 1e-8);
  dd p = ext::powi(base, 10);
  dd q(1.0);
  for (int i = 0; i < 10; ++i) q = q * base;
  EXPECT_EQ(p.hi, q.hi);
  EXPECT_NEAR(p.lo, q.lo, 1e-30);
  EXPECT_NEAR((ext::powi(dd(2.0), -3)).to_double(), 0.125, 1e-30);
}

TEST(Dd, StringRoundTrip) {
  dd x = dd(1.0) / dd(3.0);
  dd y = ext::dd_from_string(ext::to_string(x));
  EXPECT_LT(std::abs((x - y).to_double()), 1e-29);
  EXPECT_EQ(ext::to_string(dd(0.0)), "0");
  dd z = ext::dd_from_string("-2.5e-3");
  EXPECT_NEAR(z.to_double(), -2.5e-3, 1e-30);
}

// ---- the paper's SDR requirement -------------------------------------------

TEST(Dd, ResolvesLevel34CellOffsets) {
  // SDR 1e12: Δx/x ~ 1e-12 with two orders of headroom (§3.5).  A cell width
  // at 34 levels of factor-2 refinement on a 128 root grid:
  const dd domain(1.0);
  dd dx = domain;
  for (int l = 0; l < 34; ++l) dx /= dd(2.0);
  dx /= dd(128.0);
  // x near the middle of the domain; x + dx must be distinguishable and the
  // difference recoverable *exactly* — not merely to double round-off.
  dd x(0.4999999);
  dd xp = x + dx;
  EXPECT_TRUE(xp > x);
  dd recovered = xp - x;
  EXPECT_NEAR((recovered / dx).to_double(), 1.0, 1e-20);
}

TEST(Dd, CellIndexingSurvivesDeepHierarchies) {
  // The operation that actually breaks in double (§3.5: "various mathematical
  // operations applied to this ratio"): recovering a fine-grid cell index
  // idx = floor((x - left)/dx) when dx has a full mantissa (refinement by
  // non-power-of-two factors, e.g. r=3) and the grid sits at x = O(1).
  const dd left = dd(1.0) / dd(3.0);
  const dd dx = ext::powi(dd(2.0), -64) / dd(3.0);
  const long long want = 1000000;
  const dd x = left + (dd::from_int(want) + dd(0.5)) * dx;
  // dd recovers the index exactly.
  const dd idx_dd = ext::floor((x - left) / dx);
  EXPECT_DOUBLE_EQ(idx_dd.to_double(), static_cast<double>(want));
  // double cannot: the offset (~1.8e-14 of x) retains only ~8 bits.
  const double xd = x.to_double(), leftd = left.to_double(),
               dxd = dx.to_double();
  const double idx_double = std::floor((xd - leftd) / dxd);
  EXPECT_GT(std::abs(idx_double - static_cast<double>(want)), 100.0);
}

TEST(Dd, AccumulatedStepsStayExact) {
  // March a position by 1e6 fine-cell widths; the accumulated position must
  // match the closed form to dd precision (a drifting double would lose the
  // subgrid alignment the paper's flux correction depends on).
  dd dx = ext::powi(dd(2.0), -40);
  dd x(0.25);
  const int steps = 1000000;
  for (int i = 0; i < steps; ++i) x += dx;
  dd expected = dd(0.25) + dd::from_int(steps) * dx;
  EXPECT_LT(std::abs((x - expected).to_double()), 1e-25);
}

// ---- property sweeps --------------------------------------------------------

class DdPropertyTest : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DdPropertyTest, TwoSumIsErrorFree) {
  auto [a, b] = GetParam();
  double s, e;
  enzo::ext::eft::two_sum(a, b, s, e);
  // s + e == a + b exactly, and e is below the ulp of s.
  EXPECT_EQ(s, a + b);
  if (s != 0.0 && std::isfinite(s)) {
    EXPECT_LE(std::abs(e), std::ldexp(std::abs(s), -52) + 1e-300);
  }
  // Verify exactness through dd: (a+b) as dd equals (s,e) as dd.
  dd lhs = dd(a) + dd(b);
  dd rhs = dd(s) + dd(e);
  EXPECT_EQ(lhs.to_double(), rhs.to_double());
}

TEST_P(DdPropertyTest, TwoProdMatchesFma) {
  auto [a, b] = GetParam();
  double p1, e1, p2, e2;
  enzo::ext::eft::two_prod(a, b, p1, e1);
  enzo::ext::eft::two_prod_dekker(a, b, p2, e2);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(e1, e2);  // both are exact, so they must agree bit-for-bit
}

TEST_P(DdPropertyTest, AdditionCommutes) {
  auto [a, b] = GetParam();
  dd x(a, a * 1e-18), y(b, -b * 3e-19);
  dd s1 = x + y, s2 = y + x;
  EXPECT_EQ(s1.hi, s2.hi);
  EXPECT_EQ(s1.lo, s2.lo);
}

TEST_P(DdPropertyTest, MultiplicationCommutes) {
  auto [a, b] = GetParam();
  dd x(a, a * 1e-18), y(b, -b * 3e-19);
  dd p1 = x * y, p2 = y * x;
  EXPECT_EQ(p1.hi, p2.hi);
  EXPECT_EQ(p1.lo, p2.lo);
}

TEST_P(DdPropertyTest, SubtractionInverts) {
  auto [a, b] = GetParam();
  dd x(a), y(b);
  dd z = (x + y) - y;
  EXPECT_LT(std::abs((z - x).to_double()),
            4 * dd::epsilon() * (std::abs(a) + std::abs(b)) + 1e-300);
}

TEST_P(DdPropertyTest, DivisionInvertsMultiplication) {
  auto [a, b] = GetParam();
  if (b == 0.0) GTEST_SKIP();
  dd x(a), y(b);
  dd z = (x * y) / y;
  EXPECT_LT(std::abs((z - x).to_double()),
            16 * dd::epsilon() * (std::abs(a) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    MagnitudeSweep, DdPropertyTest,
    ::testing::Values(
        std::make_tuple(1.0, 1e-16), std::make_tuple(1e8, 1e-8),
        std::make_tuple(3.14159265358979, 2.71828182845905),
        // Note: products must stay below ~1e292 — the Dekker splitting
        // constant overflows beyond that, a documented dd domain limit.
        std::make_tuple(-1.0, 1.0 + 1e-15), std::make_tuple(1e200, 1e84),
        std::make_tuple(5e-324, 1e-300), std::make_tuple(0.1, 0.2),
        std::make_tuple(1048576.0, -1048575.999999999),
        std::make_tuple(-7.25e11, 3.5e-13), std::make_tuple(0.0, 0.0),
        std::make_tuple(1.0 / 3.0, 2.0 / 3.0),
        std::make_tuple(123456789.123456789, -987654321.987654321)));

TEST(Position, PosTypeIsExtended) {
  // Default build: pos_t must carry more than double precision.
  ext::pos_t x(0.5);
  ext::pos_t dx(std::ldexp(1.0, -70));
  ext::pos_t y = x + dx;
  EXPECT_TRUE(y > x);
  EXPECT_NEAR(ext::pos_to_double(y), 0.5, 1e-15);
}
