// Gravity tests: multigrid against a manufactured solution, FFT root solve
// against discrete plane-wave eigenfunctions and a compact mass's 1/r²
// field, mass restriction, subgrid solves with parent BCs, and sibling
// potential consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "gravity/gravity.hpp"
#include "mesh/hierarchy.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;

namespace {

mesh::Hierarchy make_box(int n, int max_level = 4) {
  mesh::HierarchyParams p;
  p.root_dims = {n, n, n};
  p.max_level = max_level;
  mesh::Hierarchy h(p);
  h.build_root();
  return h;
}

void fill_uniform_gas(Grid& g, double rho0) {
  for (Field f : g.field_list())
    g.field(f).fill(f == Field::kDensity
                        ? rho0
                        : (f == Field::kTotalEnergy ||
                           f == Field::kInternalEnergy)
                              ? 1.0
                              : 0.0);
}

}  // namespace

// ---- multigrid ------------------------------------------------------------------

TEST(Multigrid, ManufacturedSolutionConverges) {
  // ∇²φ = rhs with φ = sin(πx)sin(πy)sin(πz) on the unit cube, Dirichlet
  // ghosts from the analytic solution.
  const int n = 32;
  const double dx = 1.0 / n;
  util::Array3<double> phi(n + 2, n + 2, n + 2, 0.0);
  util::Array3<double> rhs(n + 2, n + 2, n + 2, 0.0);
  auto exact = [&](int i, int j, int k) {
    const double x = (i - 0.5) * dx, y = (j - 0.5) * dx, z = (k - 0.5) * dx;
    return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
  };
  for (int k = 0; k < n + 2; ++k)
    for (int j = 0; j < n + 2; ++j)
      for (int i = 0; i < n + 2; ++i) {
        const bool interior = i >= 1 && i <= n && j >= 1 && j <= n &&
                              k >= 1 && k <= n;
        if (interior)
          rhs(i, j, k) = -3.0 * M_PI * M_PI * exact(i, j, k);
        else
          phi(i, j, k) = exact(i, j, k);
      }
  gravity::GravityParams p;
  const double rel = gravity::multigrid_solve(phi.view(), rhs.view(), dx, p);
  EXPECT_LT(rel, p.mg_tolerance);
  double max_err = 0;
  for (int k = 1; k <= n; ++k)
    for (int j = 1; j <= n; ++j)
      for (int i = 1; i <= n; ++i)
        max_err = std::max(max_err, std::abs(phi(i, j, k) - exact(i, j, k)));
  // Second-order discretization error at n=32: ~π²dx²/12 ≈ 8e-4.
  EXPECT_LT(max_err, 5e-3);
}

TEST(Multigrid, DiscretizationErrorIsSecondOrder) {
  auto run = [](int n) {
    const double dx = 1.0 / n;
    util::Array3<double> phi(n + 2, n + 2, n + 2, 0.0);
    util::Array3<double> rhs(n + 2, n + 2, n + 2, 0.0);
    auto exact = [&](int i, int j, int k) {
      const double x = (i - 0.5) * dx, y = (j - 0.5) * dx, z = (k - 0.5) * dx;
      return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
    };
    for (int k = 0; k < n + 2; ++k)
      for (int j = 0; j < n + 2; ++j)
        for (int i = 0; i < n + 2; ++i) {
          const bool interior = i >= 1 && i <= n && j >= 1 && j <= n &&
                                k >= 1 && k <= n;
          if (interior)
            rhs(i, j, k) = -3.0 * M_PI * M_PI * exact(i, j, k);
          else
            phi(i, j, k) = exact(i, j, k);
        }
    gravity::GravityParams p;
    gravity::multigrid_solve(phi.view(), rhs.view(), 1.0 / n, p);
    double err = 0;
    for (int k = 1; k <= n; ++k)
      for (int j = 1; j <= n; ++j)
        for (int i = 1; i <= n; ++i)
          err = std::max(err, std::abs(phi(i, j, k) - exact(i, j, k)));
    return err;
  };
  const double e8 = run(8), e16 = run(16);
  EXPECT_NEAR(e8 / e16, 4.0, 1.2);  // ratio ≈ 2² for 2nd order
}

TEST(Multigrid, ZeroRhsReproducesHarmonicBoundary) {
  // rhs = 0 with linear BC φ = x: the exact discrete solution is linear.
  const int n = 16;
  const double dx = 1.0 / n;
  util::Array3<double> phi(n + 2, n + 2, n + 2, 0.0);
  util::Array3<double> rhs(n + 2, n + 2, n + 2, 0.0);
  for (int k = 0; k < n + 2; ++k)
    for (int j = 0; j < n + 2; ++j)
      for (int i = 0; i < n + 2; ++i)
        if (i == 0 || i == n + 1 || j == 0 || j == n + 1 || k == 0 ||
            k == n + 1)
          phi(i, j, k) = (i - 0.5) * dx;
  gravity::GravityParams p;
  gravity::multigrid_solve(phi.view(), rhs.view(), dx, p);
  for (int k = 1; k <= n; ++k)
    for (int i = 1; i <= n; ++i)
      EXPECT_NEAR(phi(i, 8, k), (i - 0.5) * dx, 1e-7);
}

TEST(Multigrid, OddExtentsStillConverge) {
  // A 12×10×14 box coarsens a couple of times then bottoms out; the solver
  // must still reach a reasonable residual.
  util::Array3<double> phi(14, 12, 16, 0.0);
  util::Array3<double> rhs(14, 12, 16, 0.0);
  rhs(7, 6, 8) = 100.0;
  gravity::GravityParams p;
  p.mg_max_vcycles = 60;
  const double rel = gravity::multigrid_solve(phi.view(), rhs.view(), 0.05, p);
  EXPECT_LT(rel, 1e-6);
}

// ---- FFT root solve ---------------------------------------------------------------

TEST(RootGravity, PlaneWaveEigenfunction) {
  // δρ = cos(2π m x): with the discrete Laplacian Green function the
  // potential is exactly  coef·δρ / λ(m),  λ = (2cos(2πm/n) − 2)/dx².
  const int n = 16;
  mesh::Hierarchy h = make_box(n);
  Grid* g = h.grids(0)[0];
  fill_uniform_gas(*g, 1.0);
  g->allocate_gravity();
  gravity::begin_gravitating_mass(h, 0);
  const auto gm = g->gravitating_mass();
  const int m = 3;
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        gm(i + 1, j + 1, k + 1) = 1.0 + 0.5 * std::cos(2 * M_PI * m * (i + 0.5) / n);
  gravity::GravityParams p;
  const double a = 1.0;
  gravity::solve_root_gravity(h, p, a);
  const double dx = 1.0 / n;
  const double lam = (2.0 * std::cos(2 * M_PI * m / n) - 2.0) / (dx * dx);
  const auto pot = g->potential();
  for (int i = 0; i < n; ++i) {
    // Mode phase matches the *cell index* (DFT of the sampled field).
    const double expected =
        p.grav_const_code * 0.5 * std::cos(2 * M_PI * m * (i + 0.5) / n) / lam;
    // The sampled cosine's phase (i+0.5)/n vs DFT bin at i/n: compare with
    // the sampled form by reading the solver's own convention at j=k=0.
    EXPECT_NEAR(pot(i + 1, 5, 5), expected, 2e-3 * std::abs(1.0 / lam))
        << "i=" << i;
  }
}

TEST(RootGravity, UniformDensityGivesZeroForce) {
  const int n = 8;
  mesh::Hierarchy h = make_box(n);
  Grid* g = h.grids(0)[0];
  fill_uniform_gas(*g, 1.0);
  g->allocate_gravity();
  gravity::begin_gravitating_mass(h, 0);
  gravity::GravityParams p;
  gravity::solve_root_gravity(h, p, 1.0);
  gravity::compute_accelerations(*g, 1.0);
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(g->acceleration(d).min(), 0.0, 1e-12);
    EXPECT_NEAR(g->acceleration(d).max(), 0.0, 1e-12);
  }
}

TEST(RootGravity, CompactMassInverseSquareField) {
  // Deposit a compact mass at the center of a 64³ box; the radial
  // acceleration at r << L/2 must follow g = G_code M /(4π r²) (our
  // convention: ∇²φ = G_code δρ means G_code = 4πG, so g = G_code M/(4π r²)).
  const int n = 64;
  mesh::Hierarchy h = make_box(n);
  Grid* g = h.grids(0)[0];
  fill_uniform_gas(*g, 0.0);
  g->allocate_gravity();
  gravity::begin_gravitating_mass(h, 0);
  const auto gm = g->gravitating_mass();
  const double dx = 1.0 / n;
  const double mass = 1.0;  // total
  gm(n / 2 + 1, n / 2 + 1, n / 2 + 1) = mass / (dx * dx * dx);
  gravity::GravityParams p;
  gravity::solve_root_gravity(h, p, 1.0);
  gravity::compute_accelerations(*g, 1.0);
  // Sample along +x at a few radii.
  for (int off : {6, 8, 12}) {
    const double r = off * dx;
    const double gx = g->acceleration(0)(n / 2 + off, n / 2, n / 2);
    const double expected = -p.grav_const_code * mass / (4.0 * M_PI * r * r);
    EXPECT_NEAR(gx / expected, 1.0, 0.08) << "off=" << off;
  }
  // Momentum balance: ∑ ρ g over the grid vanishes by periodicity/symmetry.
  double net = 0;
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        net += gm(i + 1, j + 1, k + 1) * g->acceleration(0)(i, j, k);
  EXPECT_NEAR(net, 0.0, 1e-8 * mass / (dx * dx));
}

// ---- mass restriction ----------------------------------------------------------

TEST(Gravity, RestrictGravitatingMassAverages) {
  mesh::HierarchyParams hp;
  hp.root_dims = {8, 8, 8};
  hp.max_level = 1;
  mesh::Hierarchy h(hp);
  h.build_root();
  Grid* root = h.grids(0)[0];
  fill_uniform_gas(*root, 1.0);
  root->store_old_fields();
  auto child = std::make_unique<Grid>(
      h.make_spec(1, {{4, 4, 4}, {8, 8, 8}}), hp.fields);
  child->set_parent(root);
  fill_uniform_gas(*child, 5.0);
  Grid* c = h.insert_grid(std::move(child));
  gravity::begin_gravitating_mass(h, 0);
  gravity::begin_gravitating_mass(h, 1);
  gravity::restrict_gravitating_mass(h);
  // Parent cells under the child ([2,4)³) now read 5.0; others 1.0.
  EXPECT_DOUBLE_EQ(root->gravitating_mass()(2 + 1, 2 + 1, 2 + 1), 5.0);
  EXPECT_DOUBLE_EQ(root->gravitating_mass()(0 + 1, 0 + 1, 0 + 1), 1.0);
  (void)c;
}

// ---- subgrid solve --------------------------------------------------------------

TEST(SubgridGravity, UniformDensityKeepsPotentialSmooth) {
  // δρ = 0 everywhere: root potential is 0; child potential must also come
  // out (near) zero with zero accelerations.
  mesh::HierarchyParams hp;
  hp.root_dims = {16, 16, 16};
  hp.max_level = 1;
  mesh::Hierarchy h(hp);
  h.build_root();
  Grid* root = h.grids(0)[0];
  fill_uniform_gas(*root, 1.0);
  root->store_old_fields();
  auto child = std::make_unique<Grid>(
      h.make_spec(1, {{8, 8, 8}, {24, 24, 24}}), hp.fields);
  child->set_parent(root);
  fill_uniform_gas(*child, 1.0);
  Grid* c = h.insert_grid(std::move(child));
  gravity::begin_gravitating_mass(h, 0);
  gravity::begin_gravitating_mass(h, 1);
  gravity::restrict_gravitating_mass(h);
  gravity::GravityParams p;
  gravity::solve_root_gravity(h, p, 1.0);
  gravity::solve_subgrid_gravity(h, 1, p, 1.0);
  gravity::compute_accelerations(*c, 1.0);
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(c->acceleration(d).min(), 0.0, 1e-9);
    EXPECT_NEAR(c->acceleration(d).max(), 0.0, 1e-9);
  }
}

TEST(SubgridGravity, RefinedPointMassMatchesAnalyticCloser) {
  // Root 32³ with a compact mass; a refined 2× child over the center.  The
  // child's acceleration at small radii should approach the 1/r² law better
  // than the root's.
  const int n = 32;
  mesh::HierarchyParams hp;
  hp.root_dims = {n, n, n};
  hp.max_level = 1;
  mesh::Hierarchy h(hp);
  h.build_root();
  Grid* root = h.grids(0)[0];
  fill_uniform_gas(*root, 0.0);
  root->store_old_fields();
  // Child covering the central 8³ root cells at 2× resolution.
  auto child = std::make_unique<Grid>(
      h.make_spec(1, {{2 * (n / 2 - 4), 2 * (n / 2 - 4), 2 * (n / 2 - 4)},
                      {2 * (n / 2 + 4), 2 * (n / 2 + 4), 2 * (n / 2 + 4)}}),
      hp.fields);
  child->set_parent(root);
  fill_uniform_gas(*child, 0.0);
  Grid* c = h.insert_grid(std::move(child));

  gravity::begin_gravitating_mass(h, 0);
  gravity::begin_gravitating_mass(h, 1);
  // Point mass at the domain center, deposited on the child.
  const double dxc = c->cell_width_d(0);
  const double mass = 1.0;
  const auto cgm = c->gravitating_mass();
  cgm(c->nx(0) / 2 + 1, c->nx(1) / 2 + 1, c->nx(2) / 2 + 1) =
      mass / (dxc * dxc * dxc);
  gravity::restrict_gravitating_mass(h);
  gravity::GravityParams p;
  gravity::solve_root_gravity(h, p, 1.0);
  gravity::solve_subgrid_gravity(h, 1, p, 1.0);
  gravity::compute_accelerations(*c, 1.0);

  for (int off : {4, 6}) {
    const double r = off * dxc;
    const double gx =
        c->acceleration(0)(c->nx(0) / 2 + off, c->nx(1) / 2, c->nx(2) / 2);
    const double expected = -p.grav_const_code * mass / (4.0 * M_PI * r * r);
    EXPECT_NEAR(gx / expected, 1.0, 0.15) << "off=" << off;
  }
}

TEST(SubgridGravity, SiblingExchangeImprovesContinuity) {
  // Two adjacent children across a shared face with a mass straddling it:
  // after the sibling iteration the potential must be continuous across the
  // face to within the multigrid tolerance scale.
  const int n = 16;
  mesh::HierarchyParams hp;
  hp.root_dims = {n, n, n};
  hp.max_level = 1;
  mesh::Hierarchy h(hp);
  h.build_root();
  Grid* root = h.grids(0)[0];
  fill_uniform_gas(*root, 0.0);
  root->store_old_fields();
  auto c1 = std::make_unique<Grid>(
      h.make_spec(1, {{8, 8, 8}, {16, 24, 24}}), hp.fields);
  auto c2 = std::make_unique<Grid>(
      h.make_spec(1, {{16, 8, 8}, {24, 24, 24}}), hp.fields);
  c1->set_parent(root);
  c2->set_parent(root);
  fill_uniform_gas(*c1, 0.0);
  fill_uniform_gas(*c2, 0.0);
  Grid* g1 = h.insert_grid(std::move(c1));
  Grid* g2 = h.insert_grid(std::move(c2));
  gravity::begin_gravitating_mass(h, 0);
  gravity::begin_gravitating_mass(h, 1);
  // Mass just left of the shared face (global fine x=16).
  const auto gm1 = g1->gravitating_mass();
  const double dxc = g1->cell_width_d(0);
  gm1(g1->nx(0) - 1 + 1, 8 + 1, 8 + 1) = 1.0 / (dxc * dxc * dxc);
  gravity::restrict_gravitating_mass(h);
  gravity::GravityParams p;
  gravity::solve_root_gravity(h, p, 1.0);

  // Reference: a second hierarchy whose single child covers the union of
  // the two siblings, with the same mass.
  mesh::Hierarchy href(hp);
  href.build_root();
  Grid* rroot = href.grids(0)[0];
  fill_uniform_gas(*rroot, 0.0);
  rroot->store_old_fields();
  auto cu = std::make_unique<Grid>(
      href.make_spec(1, {{8, 8, 8}, {24, 24, 24}}), hp.fields);
  cu->set_parent(rroot);
  fill_uniform_gas(*cu, 0.0);
  Grid* gref = href.insert_grid(std::move(cu));
  gravity::begin_gravitating_mass(href, 0);
  gravity::begin_gravitating_mass(href, 1);
  gref->gravitating_mass()(7 + 1, 8 + 1, 8 + 1) = 1.0 / (dxc * dxc * dxc);
  gravity::restrict_gravitating_mass(href);
  gravity::solve_root_gravity(href, p, 1.0);
  gravity::solve_subgrid_gravity(href, 1, p, 1.0);

  // Error of the two-grid solution against the reference at cells flanking
  // the shared face (global fine x = 15 on g1, x = 16 on g2), away from the
  // mass along y.
  auto err_vs_ref = [&](int sibling_iters) {
    gravity::GravityParams q = p;
    q.sibling_iterations = sibling_iters;
    gravity::solve_subgrid_gravity(h, 1, q, 1.0);
    double e = 0;
    for (int jj : {4, 8, 12}) {
      e += std::abs(g1->potential()(g1->nx(0), jj + 1, 8 + 1) -
                    gref->potential()(7 + 1, jj + 1, 8 + 1));
      e += std::abs(g2->potential()(1, jj + 1, 8 + 1) -
                    gref->potential()(8 + 1, jj + 1, 8 + 1));
    }
    return e;
  };
  const double no_exchange = err_vs_ref(0);
  const double with_exchange = err_vs_ref(4);
  EXPECT_LT(with_exchange, no_exchange);
}
