// Telemetry subsystem tests: hierarchical trace accounting, metrics
// registry instruments, JSONL diagnostics schema round-trip, Chrome trace
// export validity, structured logging, and the thread-safety guarantees the
// instrumentation layer makes (ComponentTimers shim, AllocStats peak).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "core/setup.hpp"
#include "core/simulation.hpp"
#include "perf/diagnostics.hpp"
#include "perf/json.hpp"
#include "perf/log.hpp"
#include "perf/metrics.hpp"
#include "perf/trace.hpp"
#include "util/alloc_stats.hpp"
#include "util/flops.hpp"
#include "util/timer.hpp"

using namespace enzo;

namespace {

void burn(double seconds) {
  const auto t0 = std::chrono::steady_clock::now();
  volatile double x = 1.0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() < seconds)
    x = x * 1.0000001;
  (void)x;
}

}  // namespace

// ---- trace recorder --------------------------------------------------------

TEST(Trace, NestedScopeAccounting) {
  perf::TraceRecorder rec;
  {
    perf::TraceScope outer("outer", perf::component::kHydro, 1, &rec);
    burn(0.005);
    {
      perf::TraceScope inner("inner", perf::component::kGravity, 2, &rec);
      burn(0.005);
    }
    {
      perf::TraceScope inner("inner", perf::component::kGravity, 2, &rec);
      burn(0.002);
    }
  }
  EXPECT_EQ(rec.path_calls("outer"), 1u);
  EXPECT_EQ(rec.path_calls("outer/inner"), 2u);
  const double parent = rec.path_seconds("outer");
  const double child = rec.path_seconds("outer/inner");
  EXPECT_GT(child, 0.0);
  EXPECT_LE(child, parent);  // child inclusive time nests inside the parent

  // Self time partitions: parent self + child self == parent inclusive.
  double outer_self = 0.0, inner_self = 0.0;
  for (const auto& n : rec.nodes()) {
    if (n.path == "outer") {
      outer_self = n.self_seconds;
      EXPECT_EQ(n.component, perf::component::kHydro);
      EXPECT_EQ(n.level, 1);
    }
    if (n.path == "outer/inner") {
      inner_self = n.self_seconds;
      EXPECT_EQ(n.component, perf::component::kGravity);
      EXPECT_EQ(n.level, 2);
    }
  }
  EXPECT_NEAR(outer_self + inner_self, parent, 1e-9);
  EXPECT_NEAR(rec.component_seconds(perf::component::kHydro), outer_self,
              1e-12);
  EXPECT_NEAR(rec.component_seconds(perf::component::kGravity), inner_self,
              1e-12);
}

TEST(Trace, ComponentFractionsSumToOne) {
  perf::TraceRecorder rec;
  {
    perf::TraceScope a("hydro", perf::component::kHydro, 0, &rec);
    burn(0.004);
    perf::TraceScope b("chem", perf::component::kChemistry, 1, &rec);
    burn(0.003);
  }
  {
    perf::TraceScope c("rebuild", perf::component::kRebuild, 0, &rec);
    burn(0.002);
  }
  const auto table = rec.component_table();
  ASSERT_GE(table.size(), 3u);
  double sum = 0.0;
  for (const auto& row : table) sum += row.fraction;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Rows are sorted descending by time.
  for (std::size_t i = 1; i < table.size(); ++i)
    EXPECT_GE(table[i - 1].seconds, table[i].seconds);
}

TEST(Trace, ComponentAndLevelInheritance) {
  perf::TraceRecorder rec;
  {
    perf::TraceScope outer("solver", perf::component::kChemistry, 3, &rec);
    perf::TraceScope inner("inner_stage", nullptr, -1, &rec);
    burn(0.001);
  }
  for (const auto& n : rec.nodes())
    if (n.path == "solver/inner_stage") {
      EXPECT_EQ(n.component, perf::component::kChemistry);
      EXPECT_EQ(n.level, 3);
    }
}

TEST(Trace, ChromeTraceJsonIsValidAndMonotonic) {
  perf::TraceRecorder rec;
  rec.enable_events(true);
  for (int i = 0; i < 3; ++i) {
    perf::TraceScope outer("step", perf::component::kHydro, 0, &rec);
    perf::TraceScope inner("sweep", perf::component::kHydro, 1, &rec);
    burn(0.0005);
  }
  EXPECT_EQ(rec.events_recorded(), 6u);
  EXPECT_EQ(rec.events_dropped(), 0u);

  perf::JsonValue doc;
  std::string err;
  ASSERT_TRUE(perf::json_parse(rec.chrome_trace_json(), &doc, &err)) << err;
  const perf::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array().size(), 6u);
  double last_ts = -std::numeric_limits<double>::infinity();
  for (const auto& ev : events->array()) {
    ASSERT_TRUE(ev.is_object());
    const perf::JsonValue* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->str(), "X");
    for (const char* key : {"name", "cat", "ts", "dur", "pid", "tid"})
      EXPECT_NE(ev.find(key), nullptr) << "missing key " << key;
    const double ts = ev.find("ts")->number();
    EXPECT_GE(ts, last_ts);  // sorted → monotonic timestamps
    last_ts = ts;
    EXPECT_GE(ev.find("dur")->number(), 0.0);
  }
}

TEST(Trace, EventCapDropsInsteadOfGrowing) {
  perf::TraceRecorder rec;
  rec.enable_events(true);
  // The cap is 2^20; push a modest number and verify accounting stays exact.
  for (int i = 0; i < 100; ++i)
    rec.record_event("e", "e", perf::component::kOther, -1, i * 1.0, 0.5);
  EXPECT_EQ(rec.events_recorded() + rec.events_dropped(), 100u);
}

TEST(Trace, ThreadedScopesAggregateAllCalls) {
  perf::TraceRecorder rec;
  constexpr int kThreads = 8, kIters = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&rec] {
      for (int i = 0; i < kIters; ++i) {
        perf::TraceScope s("worker", perf::component::kNbody, 1, &rec);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.path_calls("worker"),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// ---- metrics registry ------------------------------------------------------

TEST(Metrics, CounterGaugeBasics) {
  perf::Registry reg;
  perf::Counter& c = reg.counter("c");
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4u);
  EXPECT_EQ(&reg.counter("c"), &c);  // find-or-create is stable
  perf::Gauge& g = reg.gauge("g");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramBucketEdges) {
  using H = perf::Histogram;
  // Zeros get their own bucket; powers of two open new buckets.
  EXPECT_EQ(H::bucket_of(0), 0);
  EXPECT_EQ(H::bucket_of(1), 1);
  EXPECT_EQ(H::bucket_of(2), 2);
  EXPECT_EQ(H::bucket_of(3), 2);
  EXPECT_EQ(H::bucket_of(4), 3);
  EXPECT_EQ(H::bucket_of((1ull << 38) - 1), H::kBuckets - 2);
  // Everything at/beyond 2^(kBuckets-2) lands in the overflow bucket.
  EXPECT_EQ(H::bucket_of(1ull << (H::kBuckets - 2)), H::kBuckets - 1);
  EXPECT_EQ(H::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            H::kBuckets - 1);
  // Lower bounds are consistent with bucket_of.
  EXPECT_EQ(H::bucket_lo(0), 0u);
  EXPECT_EQ(H::bucket_lo(1), 1u);
  EXPECT_EQ(H::bucket_lo(2), 2u);
  for (int i = 1; i < H::kBuckets - 1; ++i) {
    EXPECT_EQ(H::bucket_of(H::bucket_lo(i)), i);
    if (H::bucket_lo(i) > 1) {
      EXPECT_EQ(H::bucket_of(H::bucket_lo(i) - 1), i - 1);
    }
  }

  perf::Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(5);
  h.observe(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(H::kBuckets - 1), 1u);
}

TEST(Metrics, SourcesAppearInSnapshotAndJson) {
  perf::Registry reg;
  reg.counter("hits").add(7);
  reg.register_source("ext", [] {
    return std::vector<perf::Registry::Sample>{{"ext.value", "source", 42.0}};
  });
  bool saw_counter = false, saw_source = false;
  for (const auto& s : reg.snapshot()) {
    if (s.name == "hits") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(s.value, 7.0);
    }
    if (s.name == "ext.value") {
      saw_source = true;
      EXPECT_DOUBLE_EQ(s.value, 42.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_source);

  perf::JsonValue doc;
  ASSERT_TRUE(perf::json_parse(reg.json(), &doc));
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("hits"), nullptr);
  EXPECT_DOUBLE_EQ(doc.find("hits")->number(), 7.0);
}

TEST(Metrics, LegacySingletonsRegisterAsSources) {
  // Touch the singletons so their lazy source registration runs.
  util::FlopCounter::global().add("test_component", 123);
  util::AllocStats::global();
  bool saw_flops = false, saw_alloc = false;
  for (const auto& s : perf::Registry::global().snapshot()) {
    if (s.name == "flops.total") saw_flops = true;
    if (s.name == "alloc.peak_bytes") saw_alloc = true;
  }
  EXPECT_TRUE(saw_flops);
  EXPECT_TRUE(saw_alloc);
}

// ---- JSON parser/writer ----------------------------------------------------

TEST(Json, NumberFormattingRoundTrips) {
  for (double v : {0.0, 1.0, -1.5, 3.141592653589793, 1e-30, 1e300, 12345.0}) {
    perf::JsonValue doc;
    ASSERT_TRUE(perf::json_parse(perf::json_number(v), &doc));
    EXPECT_DOUBLE_EQ(doc.number(), v);
  }
}

TEST(Json, EscapeAndParseStrings) {
  const std::string nasty = "a\"b\\c\n\t\x01";
  perf::JsonValue doc;
  ASSERT_TRUE(perf::json_parse("\"" + perf::json_escape(nasty) + "\"", &doc));
  EXPECT_EQ(doc.str(), nasty);
}

TEST(Json, RejectsMalformedInput) {
  perf::JsonValue doc;
  EXPECT_FALSE(perf::json_parse("{\"a\":}", &doc));
  EXPECT_FALSE(perf::json_parse("[1,2", &doc));
  EXPECT_FALSE(perf::json_parse("{} trailing", &doc));
  EXPECT_FALSE(perf::json_parse("", &doc));
}

// ---- diagnostics sink ------------------------------------------------------

TEST(Diagnostics, StepRecordRoundTrip) {
  perf::StepRecord rec;
  rec.step = 12;
  rec.t = 0.75;
  rec.dt = 1.25e-3;
  rec.dt_limiter = "cfl";
  rec.a = 0.05;
  rec.z = 19.0;
  rec.levels = {{0, 8, 4096}, {1, 3, 1536}, {2, 1, 512}};
  rec.mass_total = 1.0;
  rec.mass_residual = -3.5e-14;
  rec.energy_total = 2.25;
  rec.energy_residual = 1e-12;
  rec.peak_bytes = 123456789;
  rec.flops = 987654321;
  rec.wall_seconds = 0.125;

  const std::string line = perf::step_record_json(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single line
  perf::StepRecord back;
  ASSERT_TRUE(perf::parse_step_record(line, &back));
  EXPECT_EQ(back.step, rec.step);
  EXPECT_DOUBLE_EQ(back.t, rec.t);
  EXPECT_DOUBLE_EQ(back.dt, rec.dt);
  EXPECT_EQ(back.dt_limiter, rec.dt_limiter);
  EXPECT_DOUBLE_EQ(back.a, rec.a);
  EXPECT_DOUBLE_EQ(back.z, rec.z);
  ASSERT_EQ(back.levels.size(), 3u);
  EXPECT_EQ(back.levels[1].level, 1);
  EXPECT_EQ(back.levels[1].grids, 3u);
  EXPECT_EQ(back.levels[1].cells, 1536u);
  EXPECT_DOUBLE_EQ(back.mass_residual, rec.mass_residual);
  EXPECT_DOUBLE_EQ(back.energy_residual, rec.energy_residual);
  EXPECT_EQ(back.peak_bytes, rec.peak_bytes);
  EXPECT_EQ(back.flops, rec.flops);
  EXPECT_DOUBLE_EQ(back.wall_seconds, rec.wall_seconds);

  EXPECT_FALSE(perf::parse_step_record("{\"step\":1}", &back));
  EXPECT_FALSE(perf::parse_step_record("not json", &back));
}

TEST(Diagnostics, SimulationEmitsOneRecordPerRootStep) {
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {16, 16, 16};
  cfg.hierarchy.max_level = 2;
  cfg.hierarchy.fields = mesh::chemistry_field_list();
  cfg.refinement.baryon_mass_threshold = 4.0 / (16.0 * 16 * 16);
  cfg.enable_chemistry = false;
  core::Simulation sim(cfg);
  core::CollapseSetupOptions opt;
  opt.chemistry = false;
  opt.overdensity = 20.0;
  opt.mean_density_cgs = 1e-19;
  opt.box_proper_cm = 4.0 * 3.0857e18;
  opt.cloud_radius = 0.25;
  opt.temperature = 100.0;
  sim.initialize(core::collapse_cloud_setup(opt));

  const std::string path = "perf_test_diag.jsonl";
  std::remove(path.c_str());
  {
    perf::DiagnosticsSink sink(path);
    ASSERT_TRUE(sink.ok());
    sim.set_diagnostics_sink(&sink);
    for (int s = 0; s < 3; ++s) sim.advance_root_step();
    sim.set_diagnostics_sink(nullptr);
    EXPECT_EQ(sink.records_written(), 3);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[1 << 16];
  int lines = 0;
  std::int64_t last_step = 0;
  while (std::fgets(buf, sizeof buf, f)) {
    perf::StepRecord rec;
    ASSERT_TRUE(perf::parse_step_record(buf, &rec)) << buf;
    ++lines;
    EXPECT_EQ(rec.step, last_step + 1);
    last_step = rec.step;
    ASSERT_FALSE(rec.levels.empty());
    EXPECT_EQ(rec.levels[0].grids, 1u);
    EXPECT_EQ(rec.levels[0].cells, 16u * 16u * 16u);
    EXPECT_FALSE(rec.dt_limiter.empty());
    EXPECT_NE(rec.dt_limiter, "none");
    EXPECT_GT(rec.dt, 0.0);
    EXPECT_GT(rec.mass_total, 0.0);
    // Root-view conservation: exact up to the interpolation applied when the
    // rebuild creates fresh subgrids (a few ppm on this problem).
    EXPECT_LT(std::abs(rec.mass_residual), 1e-4);
    EXPECT_GT(rec.wall_seconds, 0.0);
  }
  std::fclose(f);
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(Diagnostics, DtLimiterNames) {
  EXPECT_STREQ(hydro::dt_limiter_name(hydro::DtLimiter::kCfl), "cfl");
  EXPECT_STREQ(hydro::dt_limiter_name(hydro::DtLimiter::kExpansion),
               "expansion");
  EXPECT_STREQ(hydro::dt_limiter_name(hydro::DtLimiter::kStopTime),
               "stop_time");
}

TEST(Diagnostics, EvolveUntilReportsStopTimeLimiter) {
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {8, 8, 8};
  cfg.hierarchy.max_level = 0;
  core::Simulation sim(cfg);
  sim.initialize(core::uniform_setup(1.0, 1.0));
  const double dt0 = sim.advance_root_step();
  // Stop inside the next step: the clamp must be attributed to stop_time.
  sim.evolve_until(sim.time_d() + 0.25 * dt0, 1);
  EXPECT_EQ(sim.root_dt_limiter(), hydro::DtLimiter::kStopTime);
}

// ---- structured log --------------------------------------------------------

TEST(Log, LevelFiltering) {
  perf::StructuredLog log;
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  log.set_stream(tmp);
  log.set_min_level(perf::LogLevel::kWarn);
  EXPECT_FALSE(log.enabled(perf::LogLevel::kDebug));
  EXPECT_TRUE(log.enabled(perf::LogLevel::kError));
  log.logf(perf::LogLevel::kInfo, "comp", "dropped %d", 1);
  log.logf(perf::LogLevel::kWarn, "comp", "kept %d", 2);
  log.log(perf::LogLevel::kError, "comp", "kept too");
  std::fflush(tmp);
  std::rewind(tmp);
  std::string contents;
  char buf[256];
  while (std::fgets(buf, sizeof buf, tmp)) contents += buf;
  std::fclose(tmp);
  EXPECT_EQ(contents.find("dropped"), std::string::npos);
  EXPECT_NE(contents.find("[warn] comp: kept 2"), std::string::npos);
  EXPECT_NE(contents.find("[error] comp: kept too"), std::string::npos);
}

TEST(Log, LevelNamesParse) {
  EXPECT_EQ(perf::log_level_from("debug"), perf::LogLevel::kDebug);
  EXPECT_EQ(perf::log_level_from("off"), perf::LogLevel::kOff);
  EXPECT_EQ(perf::log_level_from("bogus"), perf::LogLevel::kInfo);
  EXPECT_STREQ(perf::log_level_name(perf::LogLevel::kWarn), "warn");
}

// ---- thread-safety of the legacy shims -------------------------------------

TEST(PerfThreading, ComponentTimersConcurrentAdd) {
  util::ComponentTimers timers;
  constexpr int kThreads = 8, kIters = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&timers] {
      for (int i = 0; i < kIters; ++i)
        timers.add(util::ComponentTimers::kHydro, 1e-6);
    });
  for (auto& th : threads) th.join();
  EXPECT_NEAR(timers.seconds(util::ComponentTimers::kHydro),
              kThreads * kIters * 1e-6, 1e-9);
}

TEST(PerfThreading, AllocStatsPeakNeverBelowConcurrentLive) {
  util::AllocStats stats;
  constexpr int kThreads = 8, kIters = 2000;
  constexpr std::size_t kBytes = 1024;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&stats] {
      for (int i = 0; i < kIters; ++i) {
        stats.on_alloc(kBytes);
        stats.on_free(kBytes);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(stats.allocations(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(stats.allocations(), stats.frees());
  EXPECT_EQ(stats.live_bytes(), 0u);
  // The peak must cover at least one allocation and never exceed the
  // worst-case all-threads-live total.
  EXPECT_GE(stats.peak_bytes(), kBytes);
  EXPECT_LE(stats.peak_bytes(), static_cast<std::uint64_t>(kThreads) * kBytes);
}

TEST(PerfThreading, RebuildCycleBalancesAllocations) {
  // Satellite check: after a hierarchy build + rebuild cycle is torn down,
  // every tracked grid-field byte has a matching free.  (Counts are
  // asymmetric by design: lazy old-field/flux/gravity allocations report
  // individually while the grid destructor frees once, so the balanced
  // invariant is bytes, with count balance covered by the pure-stats
  // stress test above.)
  const auto run_cycle = [] {
    core::SimulationConfig cfg;
    cfg.hierarchy.root_dims = {16, 16, 16};
    cfg.hierarchy.max_level = 2;
    cfg.refinement.overdensity_threshold = 1.5;
    core::Simulation sim(cfg);
    sim.initialize(core::uniform_setup(1.0, 1.0));
    // Perturb so the rebuild cascade flags (and later unflags) cells.
    for (mesh::Grid* g : sim.hierarchy().grids(0)) {
      const auto rho = g->field(mesh::Field::kDensity);
      rho(g->sx(8), g->sy(8), g->sz(8)) = 4.0;
    }
    sim.finalize_setup();
    EXPECT_GE(sim.hierarchy().deepest_level(), 1);
    for (int s = 0; s < 2; ++s) sim.advance_root_step();
  };
  // Warm-up cycle: kernel scratch (the SoA pencil workspace, ZEUS viscous
  // pressures) lives in process-persistent thread_local blocks drawn from
  // util::Arena::scratch(), so its first touch allocates bytes that by
  // design outlive any one simulation.  The balanced invariant is the
  // steady state: from the second cycle on, teardown returns every byte.
  run_cycle();
  util::AllocStats& stats = util::AllocStats::global();
  const std::uint64_t live0 = stats.live_bytes();
  const std::uint64_t alloc0 = stats.allocations();
  run_cycle();
  EXPECT_GT(stats.allocations(), alloc0);  // the cycle did churn memory
  EXPECT_EQ(stats.live_bytes(), live0);    // and every byte came back
}
