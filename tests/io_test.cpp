// Checkpoint/restart tests: bit-for-bit round trips of hierarchy structure,
// fields (including extended-precision times and old-state copies),
// particles, and continued evolution equivalence — the §4 restart workflow.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "analysis/analysis.hpp"
#include "core/setup.hpp"
#include "io/checkpoint.hpp"
#include "util/constants.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;

namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

core::SimulationConfig collapse_cfg() {
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {8, 8, 8};
  cfg.hierarchy.max_level = 1;
  cfg.refinement.overdensity_threshold = 3.0;
  return cfg;
}

void make_blob(core::Simulation& sim) {
  sim.build_root();
  Grid* g = sim.hierarchy().grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(0.0);
  auto& rho = g->field(Field::kDensity);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i) {
        const double x = (i + 0.5) / 8 - 0.5, y = (j + 0.5) / 8 - 0.5,
                     z = (k + 0.5) / 8 - 0.5;
        rho(g->sx(i), g->sy(j), g->sz(k)) =
            1.0 + 8.0 * std::exp(-(x * x + y * y + z * z) / 0.02);
      }
  g->field(Field::kInternalEnergy).fill(1.0);
  g->field(Field::kTotalEnergy).fill(1.0);
  mesh::Particle p;
  p.x = {ext::pos_t(0.51), ext::pos_t(0.49), ext::pos_t(0.5)};
  p.v = {0.1, -0.2, 0.05};
  p.mass = 0.01;
  p.id = 77;
  g->particles().push_back(p);
  sim.finalize_setup();
}

}  // namespace

TEST(Checkpoint, RoundTripPreservesEverything) {
  const std::string path = temp_path("enzo_ckpt_roundtrip.bin");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  a.advance_root_step();
  a.advance_root_step();
  io::write_checkpoint(a, path);

  core::Simulation b(collapse_cfg());
  io::read_checkpoint(b, path);

  // Structure.
  EXPECT_EQ(b.hierarchy().deepest_level(), a.hierarchy().deepest_level());
  EXPECT_EQ(b.hierarchy().total_grids(), a.hierarchy().total_grids());
  EXPECT_TRUE(b.time() == a.time());  // dd-exact
  EXPECT_DOUBLE_EQ(b.scale_factor(), a.scale_factor());

  // Field data, level by level, grid by grid.
  for (int l = 0; l <= a.hierarchy().deepest_level(); ++l) {
    const auto ga = a.hierarchy().grids(l);
    const auto gb = b.hierarchy().grids(l);
    ASSERT_EQ(ga.size(), gb.size());
    for (std::size_t n = 0; n < ga.size(); ++n) {
      EXPECT_EQ(ga[n]->box(), gb[n]->box());
      EXPECT_TRUE(ga[n]->time() == gb[n]->time());
      for (Field f : ga[n]->field_list()) {
        const auto& fa = ga[n]->field(f);
        const auto& fb = gb[n]->field(f);
        for (std::size_t c = 0; c < fa.size(); ++c)
          ASSERT_EQ(fa.data()[c], fb.data()[c]) << field_name(f);
      }
      ASSERT_EQ(ga[n]->particles().size(), gb[n]->particles().size());
      for (std::size_t pi = 0; pi < ga[n]->particles().size(); ++pi) {
        const auto& pa = ga[n]->particles()[pi];
        const auto& pb = gb[n]->particles()[pi];
        for (int d = 0; d < 3; ++d) {
          EXPECT_TRUE(pa.x[d] == pb.x[d]);
          EXPECT_EQ(pa.v[d], pb.v[d]);
        }
        EXPECT_EQ(pa.id, pb.id);
      }
    }
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, RestartContinuesIdentically) {
  const std::string path = temp_path("enzo_ckpt_continue.bin");
  // Reference: run 4 steps straight through.
  core::Simulation ref(collapse_cfg());
  make_blob(ref);
  for (int s = 0; s < 4; ++s) ref.advance_root_step();

  // Checkpointed: 2 steps, save, load, 2 more.
  core::Simulation first(collapse_cfg());
  make_blob(first);
  first.advance_root_step();
  first.advance_root_step();
  io::write_checkpoint(first, path);
  core::Simulation second(collapse_cfg());
  io::read_checkpoint(second, path);
  second.advance_root_step();
  second.advance_root_step();

  EXPECT_TRUE(ref.time() == second.time());
  Grid* gr = ref.hierarchy().grids(0)[0];
  Grid* gs = second.hierarchy().grids(0)[0];
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i)
        ASSERT_DOUBLE_EQ(
            gr->field(Field::kDensity)(gr->sx(i), gr->sy(j), gr->sz(k)),
            gs->field(Field::kDensity)(gs->sx(i), gs->sy(j), gs->sz(k)));
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsMismatchedConfig) {
  const std::string path = temp_path("enzo_ckpt_mismatch.bin");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  io::write_checkpoint(a, path);

  auto bad = collapse_cfg();
  bad.hierarchy.root_dims = {16, 16, 16};
  core::Simulation b(bad);
  EXPECT_THROW(io::read_checkpoint(b, path), enzo::Error);

  auto bad2 = collapse_cfg();
  bad2.hierarchy.fields = mesh::chemistry_field_list();
  core::Simulation c(bad2);
  EXPECT_THROW(io::read_checkpoint(c, path), enzo::Error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsGarbageAndMissingFiles) {
  core::Simulation b(collapse_cfg());
  EXPECT_THROW(io::read_checkpoint(b, temp_path("enzo_no_such_file.bin")),
               enzo::Error);
  const std::string path = temp_path("enzo_ckpt_garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  core::Simulation c(collapse_cfg());
  EXPECT_THROW(io::read_checkpoint(c, path), enzo::Error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, TruncatedFileDetected) {
  const std::string path = temp_path("enzo_ckpt_trunc.bin");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  io::write_checkpoint(a, path);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  core::Simulation b(collapse_cfg());
  EXPECT_THROW(io::read_checkpoint(b, path), enzo::Error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, SizeEstimateMatchesActual) {
  const std::string path = temp_path("enzo_ckpt_size.bin");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  io::write_checkpoint(a, path);
  const auto actual = std::filesystem::file_size(path);
  const auto estimate = io::checkpoint_size_bytes(a);
  EXPECT_NEAR(static_cast<double>(actual), static_cast<double>(estimate),
              0.15 * estimate);
  std::filesystem::remove(path);
}

TEST(Checkpoint, RestartWithMoreLevelsDeepens) {
  // The §4 workflow: run shallow, checkpoint, restart with a deeper
  // max_level — the next rebuild may refine further.
  const std::string path = temp_path("enzo_ckpt_deepen.bin");
  auto shallow = collapse_cfg();
  shallow.hierarchy.max_level = 1;
  core::Simulation a(shallow);
  make_blob(a);
  a.advance_root_step();
  io::write_checkpoint(a, path);

  auto deep = collapse_cfg();
  deep.hierarchy.max_level = 3;
  deep.refinement.overdensity_threshold = 1.5;
  core::Simulation b(deep);
  io::read_checkpoint(b, path);
  b.advance_root_step();
  EXPECT_GT(b.hierarchy().deepest_level(), a.hierarchy().deepest_level());
  b.hierarchy().check_invariants();
  std::filesystem::remove(path);
}

// ---- image output ---------------------------------------------------------

#include "io/image.hpp"

TEST(Image, PgmRoundTripAndScaling) {
  const std::string path = temp_path("enzo_img.pgm");
  // A 4×3 ramp: values 1..12 linear, no log.
  std::vector<double> data(12);
  for (int i = 0; i < 12; ++i) data[static_cast<std::size_t>(i)] = i + 1.0;
  io::ImageOptions opt;
  opt.log_scale = false;
  io::write_pgm(path, data, 4, 3, opt);
  const auto img = io::read_pgm(path);
  EXPECT_EQ(img.nx, 4);
  EXPECT_EQ(img.ny, 3);
  // Lowest value → 0, highest → 255; rows flipped (y-up data):
  // data[0]=1 is the minimum → byte 0; it lives in the LAST image row.
  EXPECT_EQ(img.pixels[static_cast<std::size_t>(2) * 4 + 0], 0);
  // data[11]=12 is the maximum → byte 255, first image row, last column.
  EXPECT_EQ(img.pixels[3], 255);
  std::filesystem::remove(path);
}

TEST(Image, LogScaleCompressesDynamicRange) {
  const std::string path = temp_path("enzo_img_log.pgm");
  std::vector<double> data = {1.0, 10.0, 100.0, 1000.0};
  io::ImageOptions opt;
  opt.log_scale = true;
  io::write_pgm(path, data, 4, 1, opt);
  const auto img = io::read_pgm(path);
  // Log-spaced data maps to (nearly) equally spaced bytes.
  EXPECT_EQ(img.pixels[0], 0);
  EXPECT_NEAR(img.pixels[1], 85, 2);
  EXPECT_NEAR(img.pixels[2], 170, 2);
  EXPECT_EQ(img.pixels[3], 255);
  std::filesystem::remove(path);
}

TEST(Image, DimensionMismatchRejected) {
  std::vector<double> data(5, 1.0);
  EXPECT_THROW(io::write_pgm(temp_path("x.pgm"), data, 2, 2, {}), enzo::Error);
}

TEST(Image, SliceAndProjectionWrappersProduceFiles) {
  core::Simulation a(collapse_cfg());
  make_blob(a);
  const auto s = analysis::density_slice(a.hierarchy(), 2, ext::pos_t(0.5),
                                         {0.5, 0.5}, 0.5, 16);
  const auto p = analysis::surface_density(a.hierarchy(), 2, 16);
  const std::string sp = temp_path("enzo_slice.pgm");
  const std::string pp = temp_path("enzo_proj.pgm");
  io::write_slice_pgm(sp, s);
  io::write_projection_pgm(pp, p);
  const auto si = io::read_pgm(sp);
  const auto pi = io::read_pgm(pp);
  EXPECT_EQ(si.nx, 16);
  EXPECT_EQ(pi.nx, 16);
  // The blob is centered: the central pixel outshines the corner.
  EXPECT_GT(si.pixels[static_cast<std::size_t>(8) * 16 + 8], si.pixels[0]);
  std::filesystem::remove(sp);
  std::filesystem::remove(pp);
}
