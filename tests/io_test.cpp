// Checkpoint/restart tests: bit-for-bit round trips of hierarchy structure,
// fields (including extended-precision times and old-state copies),
// particles, and continued evolution equivalence — the §4 restart workflow.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>

#include "analysis/analysis.hpp"
#include "core/setup.hpp"
#include "io/checkpoint.hpp"
#include "io/checkpoint_writer.hpp"
#include "io/codec.hpp"
#include "util/constants.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;

namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

core::SimulationConfig collapse_cfg() {
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {8, 8, 8};
  cfg.hierarchy.max_level = 1;
  cfg.refinement.overdensity_threshold = 3.0;
  return cfg;
}

void make_blob(core::Simulation& sim) {
  sim.build_root();
  Grid* g = sim.hierarchy().grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(0.0);
  const auto rho = g->field(Field::kDensity);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i) {
        const double x = (i + 0.5) / 8 - 0.5, y = (j + 0.5) / 8 - 0.5,
                     z = (k + 0.5) / 8 - 0.5;
        rho(g->sx(i), g->sy(j), g->sz(k)) =
            1.0 + 8.0 * std::exp(-(x * x + y * y + z * z) / 0.02);
      }
  g->field(Field::kInternalEnergy).fill(1.0);
  g->field(Field::kTotalEnergy).fill(1.0);
  mesh::Particle p;
  p.x = {ext::pos_t(0.51), ext::pos_t(0.49), ext::pos_t(0.5)};
  p.v = {0.1, -0.2, 0.05};
  p.mass = 0.01;
  p.id = 77;
  g->particles().push_back(p);
  sim.finalize_setup();
}

}  // namespace

TEST(Checkpoint, RoundTripPreservesEverything) {
  const std::string path = temp_path("enzo_ckpt_roundtrip.bin");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  a.advance_root_step();
  a.advance_root_step();
  io::write_checkpoint(a, path);

  core::Simulation b(collapse_cfg());
  io::read_checkpoint(b, path);

  // Structure.
  EXPECT_EQ(b.hierarchy().deepest_level(), a.hierarchy().deepest_level());
  EXPECT_EQ(b.hierarchy().total_grids(), a.hierarchy().total_grids());
  EXPECT_TRUE(b.time() == a.time());  // dd-exact
  EXPECT_DOUBLE_EQ(b.scale_factor(), a.scale_factor());

  // Field data, level by level, grid by grid.
  for (int l = 0; l <= a.hierarchy().deepest_level(); ++l) {
    const auto ga = a.hierarchy().grids(l);
    const auto gb = b.hierarchy().grids(l);
    ASSERT_EQ(ga.size(), gb.size());
    for (std::size_t n = 0; n < ga.size(); ++n) {
      EXPECT_EQ(ga[n]->box(), gb[n]->box());
      EXPECT_TRUE(ga[n]->time() == gb[n]->time());
      for (Field f : ga[n]->field_list()) {
        const auto& fa = ga[n]->field(f);
        const auto& fb = gb[n]->field(f);
        for (std::size_t c = 0; c < fa.size(); ++c)
          ASSERT_EQ(fa.data()[c], fb.data()[c]) << field_name(f);
      }
      ASSERT_EQ(ga[n]->particles().size(), gb[n]->particles().size());
      for (std::size_t pi = 0; pi < ga[n]->particles().size(); ++pi) {
        const auto& pa = ga[n]->particles()[pi];
        const auto& pb = gb[n]->particles()[pi];
        for (int d = 0; d < 3; ++d) {
          EXPECT_TRUE(pa.x[d] == pb.x[d]);
          EXPECT_EQ(pa.v[d], pb.v[d]);
        }
        EXPECT_EQ(pa.id, pb.id);
      }
    }
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, RepeatedWritesAreByteIdentical) {
  // Serialization must be a pure function of simulation state: no iteration
  // order from unordered containers, timestamps, or pointer values may leak
  // into the bytes (the enzo-lint determinism contract).  Encode the same
  // state twice and after a read round-trip; all three must match exactly.
  core::Simulation a(collapse_cfg());
  make_blob(a);
  a.advance_root_step();
  a.advance_root_step();

  const std::vector<std::uint8_t> enc1 = io::encode_checkpoint(a);
  const std::vector<std::uint8_t> enc2 = io::encode_checkpoint(a);
  ASSERT_EQ(enc1.size(), enc2.size());
  EXPECT_EQ(enc1, enc2);

  const std::string path = temp_path("ck_byteident.enzo");
  io::write_checkpoint(a, path);
  core::Simulation b(collapse_cfg());
  io::read_checkpoint(b, path);
  const std::vector<std::uint8_t> enc3 = io::encode_checkpoint(b);
  EXPECT_EQ(enc1, enc3);
  std::remove(path.c_str());
}

TEST(Checkpoint, RestartContinuesIdentically) {
  const std::string path = temp_path("enzo_ckpt_continue.bin");
  // Reference: run 4 steps straight through.
  core::Simulation ref(collapse_cfg());
  make_blob(ref);
  for (int s = 0; s < 4; ++s) ref.advance_root_step();

  // Checkpointed: 2 steps, save, load, 2 more.
  core::Simulation first(collapse_cfg());
  make_blob(first);
  first.advance_root_step();
  first.advance_root_step();
  io::write_checkpoint(first, path);
  core::Simulation second(collapse_cfg());
  io::read_checkpoint(second, path);
  second.advance_root_step();
  second.advance_root_step();

  EXPECT_TRUE(ref.time() == second.time());
  Grid* gr = ref.hierarchy().grids(0)[0];
  Grid* gs = second.hierarchy().grids(0)[0];
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i)
        ASSERT_DOUBLE_EQ(
            gr->field(Field::kDensity)(gr->sx(i), gr->sy(j), gr->sz(k)),
            gs->field(Field::kDensity)(gs->sx(i), gs->sy(j), gs->sz(k)));
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsMismatchedConfig) {
  const std::string path = temp_path("enzo_ckpt_mismatch.bin");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  io::write_checkpoint(a, path);

  auto bad = collapse_cfg();
  bad.hierarchy.root_dims = {16, 16, 16};
  core::Simulation b(bad);
  EXPECT_THROW(io::read_checkpoint(b, path), enzo::Error);

  auto bad2 = collapse_cfg();
  bad2.hierarchy.fields = mesh::chemistry_field_list();
  core::Simulation c(bad2);
  EXPECT_THROW(io::read_checkpoint(c, path), enzo::Error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsGarbageAndMissingFiles) {
  core::Simulation b(collapse_cfg());
  EXPECT_THROW(io::read_checkpoint(b, temp_path("enzo_no_such_file.bin")),
               enzo::Error);
  const std::string path = temp_path("enzo_ckpt_garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  core::Simulation c(collapse_cfg());
  EXPECT_THROW(io::read_checkpoint(c, path), enzo::Error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, TruncatedFileDetected) {
  const std::string path = temp_path("enzo_ckpt_trunc.bin");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  io::write_checkpoint(a, path);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  core::Simulation b(collapse_cfg());
  EXPECT_THROW(io::read_checkpoint(b, path), enzo::Error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, SizeEstimateMatchesActualExactly) {
  // checkpoint_size_bytes is an exact accounting of the uncompressed v2
  // format (the v1 estimate undercounted particles by 8 B and grid times by
  // 32 B); an uncompressed write must hit it to the byte, and a compressed
  // write must never exceed it.
  const std::string path = temp_path("enzo_ckpt_size.bin");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  a.advance_root_step();  // refine, so multiple grids and old fields exist
  io::CheckpointWriteOptions raw;
  raw.compress = false;
  io::write_checkpoint(a, path, raw);
  const auto estimate = io::checkpoint_size_bytes(a);
  EXPECT_EQ(std::filesystem::file_size(path), estimate);

  io::write_checkpoint(a, path);  // compressed (default)
  EXPECT_LE(std::filesystem::file_size(path), estimate);
  std::filesystem::remove(path);
}

TEST(Checkpoint, RestartWithMoreLevelsDeepens) {
  // The §4 workflow: run shallow, checkpoint, restart with a deeper
  // max_level — the next rebuild may refine further.
  const std::string path = temp_path("enzo_ckpt_deepen.bin");
  auto shallow = collapse_cfg();
  shallow.hierarchy.max_level = 1;
  core::Simulation a(shallow);
  make_blob(a);
  a.advance_root_step();
  io::write_checkpoint(a, path);

  auto deep = collapse_cfg();
  deep.hierarchy.max_level = 3;
  deep.refinement.overdensity_threshold = 1.5;
  core::Simulation b(deep);
  io::read_checkpoint(b, path);
  b.advance_root_step();
  EXPECT_GT(b.hierarchy().deepest_level(), a.hierarchy().deepest_level());
  b.hierarchy().check_invariants();
  std::filesystem::remove(path);
}

// ---- codec ----------------------------------------------------------------

TEST(Codec, Crc32KnownVectorAndIncremental) {
  // The standard "123456789" IEEE CRC-32 check value.
  const char* s = "123456789";
  const auto* p = reinterpret_cast<const std::uint8_t*>(s);
  EXPECT_EQ(io::crc32(p, 9), 0xCBF43926u);
  // Incremental chaining must equal one-shot.
  const std::uint32_t part = io::crc32(p, 4);
  EXPECT_EQ(io::crc32(p + 4, 5, part), 0xCBF43926u);
}

TEST(Codec, ShuffleRleRoundTrip) {
  // Smooth doubles (the common field pattern) must round-trip and shrink.
  std::vector<double> vals(512);
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = 1.0 + 1e-3 * static_cast<double>(i % 7);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(vals.data());
  const std::size_t n = vals.size() * sizeof(double);
  const std::vector<std::uint8_t> packed = io::compress_block(bytes, n);
  EXPECT_LT(packed.size(), n);
  const std::vector<std::uint8_t> back =
      io::decompress_block(packed.data(), packed.size(), n);
  ASSERT_EQ(back.size(), n);
  EXPECT_EQ(std::memcmp(back.data(), bytes, n), 0);

  // Incompressible random bytes must still round-trip (even if bigger).
  std::mt19937_64 rng(12345);
  std::vector<std::uint8_t> noise(4096);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng());
  const auto packed2 = io::compress_block(noise.data(), noise.size());
  const auto back2 =
      io::decompress_block(packed2.data(), packed2.size(), noise.size());
  EXPECT_EQ(back2, noise);
}

TEST(Codec, MalformedRleRejected) {
  // A run declared but its fill byte missing.
  const std::uint8_t bad[] = {0x85};
  EXPECT_THROW(io::rle_decode(bad, 1, 8), enzo::Error);
  // Declared output size not met.
  const std::uint8_t short_lit[] = {0x01, 0x42, 0x42};
  EXPECT_THROW(io::rle_decode(short_lit, 3, 64), enzo::Error);
}

// ---- format v2 integrity ---------------------------------------------------

namespace {

/// A written blob checkpoint plus a fresh target sim, for corruption tests.
std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(Checkpoint, CompressedRoundTripIsIdentical) {
  const std::string path = temp_path("enzo_ckpt_comp.bin");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  a.advance_root_step();
  io::write_checkpoint(a, path);  // compression on by default

  // At least one GRID section should actually have compressed.
  const auto sections = io::describe_checkpoint(path);
  bool any_compressed = false;
  for (const auto& s : sections) any_compressed |= s.compressed;
  EXPECT_TRUE(any_compressed);

  core::Simulation b(collapse_cfg());
  io::read_checkpoint(b, path);
  for (int l = 0; l <= a.hierarchy().deepest_level(); ++l) {
    const auto ga = a.hierarchy().grids(l);
    const auto gb = b.hierarchy().grids(l);
    ASSERT_EQ(ga.size(), gb.size());
    for (std::size_t n = 0; n < ga.size(); ++n)
      for (Field f : ga[n]->field_list()) {
        const auto& fa = ga[n]->field(f);
        const auto& fb = gb[n]->field(f);
        ASSERT_EQ(std::memcmp(fa.data(), fb.data(),
                              fa.size() * sizeof(double)),
                  0);
      }
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, SingleByteFlipDetected) {
  const std::string path = temp_path("enzo_ckpt_flip.bin");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  io::write_checkpoint(a, path);
  const std::vector<std::uint8_t> good = slurp(path);
  // Flip one bit at a spread of offsets covering header, META, GRID payload,
  // and trailer; every one must be rejected.
  for (std::size_t off : {std::size_t{3}, std::size_t{20},
                          good.size() / 3, good.size() / 2,
                          good.size() - 2}) {
    std::vector<std::uint8_t> bad = good;
    bad[off] ^= 0x10;
    spit(path, bad);
    core::Simulation b(collapse_cfg());
    EXPECT_THROW(io::read_checkpoint(b, path), enzo::Error) << "offset " << off;
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, TrailingGarbageRejected) {
  // A v1-style reader stopped once it had read "enough grids"; v2 requires
  // the stream to end exactly at the trailer, so appended bytes fail.
  const std::string path = temp_path("enzo_ckpt_padded.bin");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  io::write_checkpoint(a, path);
  std::vector<std::uint8_t> padded = slurp(path);
  padded.push_back(0);
  spit(path, padded);
  core::Simulation b(collapse_cfg());
  EXPECT_THROW(io::read_checkpoint(b, path), enzo::Error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, OldVersionRejected) {
  const std::string path = temp_path("enzo_ckpt_v1.bin");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  io::write_checkpoint(a, path);
  std::vector<std::uint8_t> bytes = slurp(path);
  // Rewrite the version word (offset 8) to 1 and re-seal the file CRC so the
  // *version check* is what fires, not the checksum.
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + 8, &v1, 4);
  const std::uint32_t crc = io::crc32(bytes.data(), bytes.size() - 4);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
  spit(path, bytes);
  core::Simulation b(collapse_cfg());
  try {
    io::read_checkpoint(b, path);
    FAIL() << "v1 checkpoint accepted";
  } catch (const enzo::Error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported checkpoint version"),
              std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, InjectedCrashLeavesPreviousSnapshotIntact) {
  const std::string path = temp_path("enzo_ckpt_crash.bin");
  const std::string tmp = path + ".tmp";
  core::Simulation a(collapse_cfg());
  make_blob(a);
  io::write_checkpoint(a, path);
  const std::vector<std::uint8_t> before = slurp(path);

  // Step on, then crash the next write partway through the temp file.
  a.advance_root_step();
  io::CheckpointWriteOptions opts;
  opts.inject_crash_after_bytes =
      io::encode_checkpoint(a, opts).size() / 2;
  io::write_checkpoint(a, path, opts);

  // The destination still holds the previous good snapshot byte-for-byte;
  // the torn temp file is left behind (and ignored by directory scans).
  EXPECT_EQ(slurp(path), before);
  EXPECT_TRUE(std::filesystem::exists(tmp));
  core::Simulation b(collapse_cfg());
  io::read_checkpoint(b, path);  // must not throw
  EXPECT_EQ(b.root_steps_taken(), 0);
  std::filesystem::remove(path);
  std::filesystem::remove(tmp);
}

// ---- retention + recovery ---------------------------------------------------

namespace {

struct TempDir {
  std::filesystem::path dir;
  explicit TempDir(const char* name)
      : dir(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
  ~TempDir() { std::filesystem::remove_all(dir); }
  std::string str() const { return dir.string(); }
};

}  // namespace

TEST(Checkpoint, WriterRollsRetention) {
  TempDir td("enzo_ckpt_retain");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  io::CheckpointWriter::Options wopts;
  wopts.dir = td.str();
  wopts.keep = 2;
  io::CheckpointWriter writer(wopts);
  for (int s = 0; s < 4; ++s) {
    a.advance_root_step();
    writer.checkpoint(a);
  }
  writer.wait();
  ASSERT_TRUE(writer.ok()) << writer.last_error();
  EXPECT_EQ(writer.writes_completed(), 4u);
  const auto files = io::list_checkpoints(td.str());
  ASSERT_EQ(files.size(), 2u);  // pruned down to keep=2, newest survive
  EXPECT_NE(files[0].find(io::checkpoint_file_name(3)), std::string::npos);
  EXPECT_NE(files[1].find(io::checkpoint_file_name(4)), std::string::npos);

  // restore_latest lands on the newest snapshot.
  core::Simulation b(collapse_cfg());
  const auto res = io::restore_latest_checkpoint(b, td.str());
  EXPECT_EQ(res.skipped, 0);
  EXPECT_EQ(b.root_steps_taken(), 4);
}

TEST(Checkpoint, RecoverySkipsCorruptAndTornSnapshots) {
  TempDir td("enzo_ckpt_recover");
  core::Simulation a(collapse_cfg());
  make_blob(a);
  io::CheckpointWriter::Options wopts;
  wopts.dir = td.str();
  wopts.keep = 10;
  io::CheckpointWriter writer(wopts);
  for (int s = 0; s < 3; ++s) {
    a.advance_root_step();
    writer.checkpoint(a);
  }
  writer.wait();
  ASSERT_TRUE(writer.ok()) << writer.last_error();

  // Corrupt the newest (byte flip) and truncate the second-newest: recovery
  // must fall back to the snapshot from step 1.
  auto files = io::list_checkpoints(td.str());
  ASSERT_EQ(files.size(), 3u);
  {
    std::vector<std::uint8_t> bytes = slurp(files[2]);
    bytes[bytes.size() / 2] ^= 0xFF;
    spit(files[2], bytes);
  }
  std::filesystem::resize_file(files[1],
                               std::filesystem::file_size(files[1]) / 3);
  core::Simulation b(collapse_cfg());
  const auto res = io::restore_latest_checkpoint(b, td.str());
  EXPECT_EQ(res.skipped, 2);
  EXPECT_EQ(res.path, files[0]);
  EXPECT_EQ(b.root_steps_taken(), 1);

  // All snapshots corrupt → recovery throws.
  std::filesystem::resize_file(files[0], 10);
  core::Simulation c(collapse_cfg());
  EXPECT_THROW(io::restore_latest_checkpoint(c, td.str()), enzo::Error);
}

// ---- image output ---------------------------------------------------------

#include "io/image.hpp"

TEST(Image, PgmRoundTripAndScaling) {
  const std::string path = temp_path("enzo_img.pgm");
  // A 4×3 ramp: values 1..12 linear, no log.
  std::vector<double> data(12);
  for (int i = 0; i < 12; ++i) data[static_cast<std::size_t>(i)] = i + 1.0;
  io::ImageOptions opt;
  opt.log_scale = false;
  io::write_pgm(path, data, 4, 3, opt);
  const auto img = io::read_pgm(path);
  EXPECT_EQ(img.nx, 4);
  EXPECT_EQ(img.ny, 3);
  // Lowest value → 0, highest → 255; rows flipped (y-up data):
  // data[0]=1 is the minimum → byte 0; it lives in the LAST image row.
  EXPECT_EQ(img.pixels[static_cast<std::size_t>(2) * 4 + 0], 0);
  // data[11]=12 is the maximum → byte 255, first image row, last column.
  EXPECT_EQ(img.pixels[3], 255);
  std::filesystem::remove(path);
}

TEST(Image, LogScaleCompressesDynamicRange) {
  const std::string path = temp_path("enzo_img_log.pgm");
  std::vector<double> data = {1.0, 10.0, 100.0, 1000.0};
  io::ImageOptions opt;
  opt.log_scale = true;
  io::write_pgm(path, data, 4, 1, opt);
  const auto img = io::read_pgm(path);
  // Log-spaced data maps to (nearly) equally spaced bytes.
  EXPECT_EQ(img.pixels[0], 0);
  EXPECT_NEAR(img.pixels[1], 85, 2);
  EXPECT_NEAR(img.pixels[2], 170, 2);
  EXPECT_EQ(img.pixels[3], 255);
  std::filesystem::remove(path);
}

TEST(Image, DimensionMismatchRejected) {
  std::vector<double> data(5, 1.0);
  EXPECT_THROW(io::write_pgm(temp_path("x.pgm"), data, 2, 2, {}), enzo::Error);
}

TEST(Image, SliceAndProjectionWrappersProduceFiles) {
  core::Simulation a(collapse_cfg());
  make_blob(a);
  const auto s = analysis::density_slice(a.hierarchy(), 2, ext::pos_t(0.5),
                                         {0.5, 0.5}, 0.5, 16);
  const auto p = analysis::surface_density(a.hierarchy(), 2, 16);
  const std::string sp = temp_path("enzo_slice.pgm");
  const std::string pp = temp_path("enzo_proj.pgm");
  io::write_slice_pgm(sp, s);
  io::write_projection_pgm(pp, p);
  const auto si = io::read_pgm(sp);
  const auto pi = io::read_pgm(pp);
  EXPECT_EQ(si.nx, 16);
  EXPECT_EQ(pi.nx, 16);
  // The blob is centered: the central pixel outshines the corner.
  EXPECT_GT(si.pixels[static_cast<std::size_t>(8) * 16 + 8], si.pixels[0]);
  std::filesystem::remove(sp);
  std::filesystem::remove(pp);
}
