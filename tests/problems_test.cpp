// Problem-registry tests: lookup and error behavior, out-of-tree
// registration via problems::Registrar, and the smoke gate that every
// registered problem initializes from its own smoke deck and takes one
// root step under the invariant auditor.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/parameter_file.hpp"
#include "core/setup.hpp"
#include "problems/registry.hpp"
#include "util/error.hpp"

using namespace enzo;

namespace {
core::ParameterDeck parse(const std::string& text) {
  std::istringstream in(text);
  return core::parse_parameter_deck(in);
}
}  // namespace

TEST(ProblemRegistry, BuiltinsRegistered) {
  const auto names = problems::Registry::global().names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* n :
       {"CollapseCloud", "Cosmology", "IsothermalCollapse", "SedovBlast",
        "SedovBlastSMR", "SodTube", "SodTubeSMR", "Uniform",
        "ZeldovichPancake"})
    EXPECT_TRUE(std::find(names.begin(), names.end(), n) != names.end()) << n;
}

TEST(ProblemRegistry, SpecsAreComplete) {
  for (const auto& name : problems::Registry::global().names()) {
    const auto& spec = problems::Registry::global().at(name);
    EXPECT_FALSE(spec.description.empty()) << name;
    EXPECT_TRUE(static_cast<bool>(spec.make)) << name;
  }
}

TEST(ProblemRegistry, AtThrowsListingRegisteredNames) {
  try {
    problems::Registry::global().at("NoSuchProblem");
    FAIL() << "should have thrown";
  } catch (const enzo::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("NoSuchProblem"), std::string::npos);
    EXPECT_NE(msg.find("SodTube"), std::string::npos);
    EXPECT_NE(msg.find("SedovBlast"), std::string::npos);
  }
}

TEST(ProblemRegistry, RegistrarMakesProblemDeckSelectable) {
  problems::ProblemSpec spec;
  spec.name = "TestBlob";
  spec.description = "out-of-tree registration test problem";
  spec.make = [](const core::ParameterDeck& d) {
    return core::uniform_setup(2.0 * d.uniform_density, d.uniform_eint);
  };
  problems::Registrar reg(spec);

  // Duplicate registration is an error, not a silent override.
  EXPECT_THROW(problems::Registry::global().add(spec), enzo::Error);

  // The parser now accepts the name and dispatch reaches the new factory.
  auto deck = parse(
      "ProblemType = TestBlob\n"
      "TopGridDimensions = 8 8 8\n"
      "UniformDensity = 1.5\n");
  core::Simulation sim(deck.config);
  core::setup_from_deck(sim, deck);
  mesh::Grid* g = sim.hierarchy().grids(0)[0];
  EXPECT_DOUBLE_EQ(g->field(mesh::Field::kDensity)(g->sx(1), g->sy(1), g->sz(1)),
                   3.0);
  sim.advance_root_step();
}

TEST(ProblemRegistry, EveryProblemSmokesUnderAuditor) {
  for (const auto& name : problems::Registry::global().names()) {
    const auto& spec = problems::Registry::global().at(name);
    if (spec.smoke_deck.empty()) continue;  // out-of-tree test problems
    SCOPED_TRACE(name);
    auto deck = parse(spec.smoke_deck + "ProblemType = " + name +
                      "\nAuditInvariants = 1\n");
    core::Simulation sim(deck.config);
    core::setup_from_deck(sim, deck);
    for (int s = 0; s < deck.stop_steps; ++s) sim.advance_root_step();
    EXPECT_GE(sim.audits_run(), 1l);
    EXPECT_EQ(sim.audit_violations_total(), 0u);
  }
}
