file(REMOVE_RECURSE
  "CMakeFiles/epa_precision.dir/epa_precision.cpp.o"
  "CMakeFiles/epa_precision.dir/epa_precision.cpp.o.d"
  "epa_precision"
  "epa_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epa_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
