# Empty compiler generated dependencies file for epa_precision.
# This may be replaced when dependencies are built.
