file(REMOVE_RECURSE
  "CMakeFiles/parallel_comm.dir/parallel_comm.cpp.o"
  "CMakeFiles/parallel_comm.dir/parallel_comm.cpp.o.d"
  "parallel_comm"
  "parallel_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
