# Empty dependencies file for parallel_comm.
# This may be replaced when dependencies are built.
