# Empty dependencies file for table_flops.
# This may be replaced when dependencies are built.
