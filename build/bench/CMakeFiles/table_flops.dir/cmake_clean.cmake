file(REMOVE_RECURSE
  "CMakeFiles/table_flops.dir/table_flops.cpp.o"
  "CMakeFiles/table_flops.dir/table_flops.cpp.o.d"
  "table_flops"
  "table_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
