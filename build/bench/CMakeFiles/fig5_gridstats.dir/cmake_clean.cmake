file(REMOVE_RECURSE
  "CMakeFiles/fig5_gridstats.dir/fig5_gridstats.cpp.o"
  "CMakeFiles/fig5_gridstats.dir/fig5_gridstats.cpp.o.d"
  "fig5_gridstats"
  "fig5_gridstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gridstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
