# Empty compiler generated dependencies file for fig5_gridstats.
# This may be replaced when dependencies are built.
