file(REMOVE_RECURSE
  "CMakeFiles/table_components.dir/table_components.cpp.o"
  "CMakeFiles/table_components.dir/table_components.cpp.o.d"
  "table_components"
  "table_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
