# Empty dependencies file for table_components.
# This may be replaced when dependencies are built.
