# Empty compiler generated dependencies file for fig3_zoom.
# This may be replaced when dependencies are built.
