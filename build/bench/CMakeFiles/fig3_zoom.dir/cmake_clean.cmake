file(REMOVE_RECURSE
  "CMakeFiles/fig3_zoom.dir/fig3_zoom.cpp.o"
  "CMakeFiles/fig3_zoom.dir/fig3_zoom.cpp.o.d"
  "fig3_zoom"
  "fig3_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
