# Empty compiler generated dependencies file for fig2_wcycle.
# This may be replaced when dependencies are built.
