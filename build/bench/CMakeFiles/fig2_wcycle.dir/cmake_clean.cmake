file(REMOVE_RECURSE
  "CMakeFiles/fig2_wcycle.dir/fig2_wcycle.cpp.o"
  "CMakeFiles/fig2_wcycle.dir/fig2_wcycle.cpp.o.d"
  "fig2_wcycle"
  "fig2_wcycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_wcycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
