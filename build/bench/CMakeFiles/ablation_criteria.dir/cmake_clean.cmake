file(REMOVE_RECURSE
  "CMakeFiles/ablation_criteria.dir/ablation_criteria.cpp.o"
  "CMakeFiles/ablation_criteria.dir/ablation_criteria.cpp.o.d"
  "ablation_criteria"
  "ablation_criteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
