# Empty compiler generated dependencies file for ablation_criteria.
# This may be replaced when dependencies are built.
