file(REMOVE_RECURSE
  "CMakeFiles/fig4_profiles.dir/fig4_profiles.cpp.o"
  "CMakeFiles/fig4_profiles.dir/fig4_profiles.cpp.o.d"
  "fig4_profiles"
  "fig4_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
