file(REMOVE_RECURSE
  "CMakeFiles/cosmology_test.dir/cosmology_test.cpp.o"
  "CMakeFiles/cosmology_test.dir/cosmology_test.cpp.o.d"
  "cosmology_test"
  "cosmology_test.pdb"
  "cosmology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
