# Empty dependencies file for cosmology_test.
# This may be replaced when dependencies are built.
