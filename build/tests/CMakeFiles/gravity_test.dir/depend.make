# Empty dependencies file for gravity_test.
# This may be replaced when dependencies are built.
