
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chemistry_test.cpp" "tests/CMakeFiles/chemistry_test.dir/chemistry_test.cpp.o" "gcc" "tests/CMakeFiles/chemistry_test.dir/chemistry_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/enzo_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/enzo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/enzo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/enzo_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/chemistry/CMakeFiles/enzo_chemistry.dir/DependInfo.cmake"
  "/root/repo/build/src/nbody/CMakeFiles/enzo_nbody.dir/DependInfo.cmake"
  "/root/repo/build/src/gravity/CMakeFiles/enzo_gravity.dir/DependInfo.cmake"
  "/root/repo/build/src/hydro/CMakeFiles/enzo_hydro.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/enzo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/cosmology/CMakeFiles/enzo_cosmology.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/enzo_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/enzo_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/enzo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
