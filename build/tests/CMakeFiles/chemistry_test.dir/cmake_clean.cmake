file(REMOVE_RECURSE
  "CMakeFiles/chemistry_test.dir/chemistry_test.cpp.o"
  "CMakeFiles/chemistry_test.dir/chemistry_test.cpp.o.d"
  "chemistry_test"
  "chemistry_test.pdb"
  "chemistry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chemistry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
