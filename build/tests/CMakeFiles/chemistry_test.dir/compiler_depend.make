# Empty compiler generated dependencies file for chemistry_test.
# This may be replaced when dependencies are built.
