file(REMOVE_RECURSE
  "CMakeFiles/hydro_test.dir/hydro_test.cpp.o"
  "CMakeFiles/hydro_test.dir/hydro_test.cpp.o.d"
  "hydro_test"
  "hydro_test.pdb"
  "hydro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
