# Empty compiler generated dependencies file for hydro_test.
# This may be replaced when dependencies are built.
