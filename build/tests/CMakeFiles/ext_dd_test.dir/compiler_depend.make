# Empty compiler generated dependencies file for ext_dd_test.
# This may be replaced when dependencies are built.
