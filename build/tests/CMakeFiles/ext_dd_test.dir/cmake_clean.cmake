file(REMOVE_RECURSE
  "CMakeFiles/ext_dd_test.dir/ext_dd_test.cpp.o"
  "CMakeFiles/ext_dd_test.dir/ext_dd_test.cpp.o.d"
  "ext_dd_test"
  "ext_dd_test.pdb"
  "ext_dd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
