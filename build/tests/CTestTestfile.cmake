# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/ext_dd_test[1]_include.cmake")
include("/root/repo/build/tests/fft_test[1]_include.cmake")
include("/root/repo/build/tests/cosmology_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/hydro_test[1]_include.cmake")
include("/root/repo/build/tests/gravity_test[1]_include.cmake")
include("/root/repo/build/tests/nbody_test[1]_include.cmake")
include("/root/repo/build/tests/chemistry_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/derived_test[1]_include.cmake")
include("/root/repo/build/tests/invariance_test[1]_include.cmake")
include("/root/repo/build/tests/deck_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
