# Empty dependencies file for enzo_hydro.
# This may be replaced when dependencies are built.
