file(REMOVE_RECURSE
  "libenzo_hydro.a"
)
