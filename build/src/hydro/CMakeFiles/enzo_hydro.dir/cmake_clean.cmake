file(REMOVE_RECURSE
  "CMakeFiles/enzo_hydro.dir/ppm.cpp.o"
  "CMakeFiles/enzo_hydro.dir/ppm.cpp.o.d"
  "CMakeFiles/enzo_hydro.dir/riemann.cpp.o"
  "CMakeFiles/enzo_hydro.dir/riemann.cpp.o.d"
  "CMakeFiles/enzo_hydro.dir/solver.cpp.o"
  "CMakeFiles/enzo_hydro.dir/solver.cpp.o.d"
  "CMakeFiles/enzo_hydro.dir/zeus.cpp.o"
  "CMakeFiles/enzo_hydro.dir/zeus.cpp.o.d"
  "libenzo_hydro.a"
  "libenzo_hydro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzo_hydro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
