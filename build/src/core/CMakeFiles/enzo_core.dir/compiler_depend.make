# Empty compiler generated dependencies file for enzo_core.
# This may be replaced when dependencies are built.
