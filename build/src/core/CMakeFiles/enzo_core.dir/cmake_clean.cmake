file(REMOVE_RECURSE
  "CMakeFiles/enzo_core.dir/parameter_file.cpp.o"
  "CMakeFiles/enzo_core.dir/parameter_file.cpp.o.d"
  "CMakeFiles/enzo_core.dir/setup.cpp.o"
  "CMakeFiles/enzo_core.dir/setup.cpp.o.d"
  "CMakeFiles/enzo_core.dir/simulation.cpp.o"
  "CMakeFiles/enzo_core.dir/simulation.cpp.o.d"
  "libenzo_core.a"
  "libenzo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
