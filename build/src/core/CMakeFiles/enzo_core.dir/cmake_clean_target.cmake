file(REMOVE_RECURSE
  "libenzo_core.a"
)
