# Empty dependencies file for enzo_util.
# This may be replaced when dependencies are built.
