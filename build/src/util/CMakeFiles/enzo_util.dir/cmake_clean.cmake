file(REMOVE_RECURSE
  "CMakeFiles/enzo_util.dir/alloc_stats.cpp.o"
  "CMakeFiles/enzo_util.dir/alloc_stats.cpp.o.d"
  "CMakeFiles/enzo_util.dir/flops.cpp.o"
  "CMakeFiles/enzo_util.dir/flops.cpp.o.d"
  "CMakeFiles/enzo_util.dir/timer.cpp.o"
  "CMakeFiles/enzo_util.dir/timer.cpp.o.d"
  "libenzo_util.a"
  "libenzo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
