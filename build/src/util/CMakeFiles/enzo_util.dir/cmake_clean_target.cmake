file(REMOVE_RECURSE
  "libenzo_util.a"
)
