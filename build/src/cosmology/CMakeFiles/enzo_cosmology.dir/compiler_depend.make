# Empty compiler generated dependencies file for enzo_cosmology.
# This may be replaced when dependencies are built.
