file(REMOVE_RECURSE
  "CMakeFiles/enzo_cosmology.dir/frw.cpp.o"
  "CMakeFiles/enzo_cosmology.dir/frw.cpp.o.d"
  "CMakeFiles/enzo_cosmology.dir/grf.cpp.o"
  "CMakeFiles/enzo_cosmology.dir/grf.cpp.o.d"
  "CMakeFiles/enzo_cosmology.dir/power_spectrum.cpp.o"
  "CMakeFiles/enzo_cosmology.dir/power_spectrum.cpp.o.d"
  "libenzo_cosmology.a"
  "libenzo_cosmology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzo_cosmology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
