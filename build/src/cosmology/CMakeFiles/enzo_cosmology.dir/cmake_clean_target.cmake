file(REMOVE_RECURSE
  "libenzo_cosmology.a"
)
