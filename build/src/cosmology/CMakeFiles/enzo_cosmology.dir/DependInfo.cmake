
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cosmology/frw.cpp" "src/cosmology/CMakeFiles/enzo_cosmology.dir/frw.cpp.o" "gcc" "src/cosmology/CMakeFiles/enzo_cosmology.dir/frw.cpp.o.d"
  "/root/repo/src/cosmology/grf.cpp" "src/cosmology/CMakeFiles/enzo_cosmology.dir/grf.cpp.o" "gcc" "src/cosmology/CMakeFiles/enzo_cosmology.dir/grf.cpp.o.d"
  "/root/repo/src/cosmology/power_spectrum.cpp" "src/cosmology/CMakeFiles/enzo_cosmology.dir/power_spectrum.cpp.o" "gcc" "src/cosmology/CMakeFiles/enzo_cosmology.dir/power_spectrum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/enzo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/enzo_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
