# Empty compiler generated dependencies file for enzo_gravity.
# This may be replaced when dependencies are built.
