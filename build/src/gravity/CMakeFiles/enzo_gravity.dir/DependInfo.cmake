
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gravity/fft_root.cpp" "src/gravity/CMakeFiles/enzo_gravity.dir/fft_root.cpp.o" "gcc" "src/gravity/CMakeFiles/enzo_gravity.dir/fft_root.cpp.o.d"
  "/root/repo/src/gravity/gravity.cpp" "src/gravity/CMakeFiles/enzo_gravity.dir/gravity.cpp.o" "gcc" "src/gravity/CMakeFiles/enzo_gravity.dir/gravity.cpp.o.d"
  "/root/repo/src/gravity/multigrid.cpp" "src/gravity/CMakeFiles/enzo_gravity.dir/multigrid.cpp.o" "gcc" "src/gravity/CMakeFiles/enzo_gravity.dir/multigrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/enzo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/enzo_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/enzo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/enzo_ext.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
