file(REMOVE_RECURSE
  "CMakeFiles/enzo_gravity.dir/fft_root.cpp.o"
  "CMakeFiles/enzo_gravity.dir/fft_root.cpp.o.d"
  "CMakeFiles/enzo_gravity.dir/gravity.cpp.o"
  "CMakeFiles/enzo_gravity.dir/gravity.cpp.o.d"
  "CMakeFiles/enzo_gravity.dir/multigrid.cpp.o"
  "CMakeFiles/enzo_gravity.dir/multigrid.cpp.o.d"
  "libenzo_gravity.a"
  "libenzo_gravity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzo_gravity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
