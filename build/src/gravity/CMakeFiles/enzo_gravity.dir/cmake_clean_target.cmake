file(REMOVE_RECURSE
  "libenzo_gravity.a"
)
