file(REMOVE_RECURSE
  "CMakeFiles/enzo_fft.dir/fft.cpp.o"
  "CMakeFiles/enzo_fft.dir/fft.cpp.o.d"
  "libenzo_fft.a"
  "libenzo_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzo_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
