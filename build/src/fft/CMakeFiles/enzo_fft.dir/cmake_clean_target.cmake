file(REMOVE_RECURSE
  "libenzo_fft.a"
)
