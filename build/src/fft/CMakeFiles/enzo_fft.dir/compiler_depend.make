# Empty compiler generated dependencies file for enzo_fft.
# This may be replaced when dependencies are built.
