file(REMOVE_RECURSE
  "CMakeFiles/enzo_io.dir/checkpoint.cpp.o"
  "CMakeFiles/enzo_io.dir/checkpoint.cpp.o.d"
  "CMakeFiles/enzo_io.dir/image.cpp.o"
  "CMakeFiles/enzo_io.dir/image.cpp.o.d"
  "libenzo_io.a"
  "libenzo_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzo_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
