# Empty compiler generated dependencies file for enzo_io.
# This may be replaced when dependencies are built.
