file(REMOVE_RECURSE
  "libenzo_io.a"
)
