file(REMOVE_RECURSE
  "libenzo_mesh.a"
)
