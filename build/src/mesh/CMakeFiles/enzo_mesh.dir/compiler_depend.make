# Empty compiler generated dependencies file for enzo_mesh.
# This may be replaced when dependencies are built.
