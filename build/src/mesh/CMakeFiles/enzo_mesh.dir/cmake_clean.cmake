file(REMOVE_RECURSE
  "CMakeFiles/enzo_mesh.dir/berger_rigoutsos.cpp.o"
  "CMakeFiles/enzo_mesh.dir/berger_rigoutsos.cpp.o.d"
  "CMakeFiles/enzo_mesh.dir/boundary.cpp.o"
  "CMakeFiles/enzo_mesh.dir/boundary.cpp.o.d"
  "CMakeFiles/enzo_mesh.dir/grid.cpp.o"
  "CMakeFiles/enzo_mesh.dir/grid.cpp.o.d"
  "CMakeFiles/enzo_mesh.dir/hierarchy.cpp.o"
  "CMakeFiles/enzo_mesh.dir/hierarchy.cpp.o.d"
  "CMakeFiles/enzo_mesh.dir/interpolate.cpp.o"
  "CMakeFiles/enzo_mesh.dir/interpolate.cpp.o.d"
  "CMakeFiles/enzo_mesh.dir/project.cpp.o"
  "CMakeFiles/enzo_mesh.dir/project.cpp.o.d"
  "libenzo_mesh.a"
  "libenzo_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzo_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
