
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/berger_rigoutsos.cpp" "src/mesh/CMakeFiles/enzo_mesh.dir/berger_rigoutsos.cpp.o" "gcc" "src/mesh/CMakeFiles/enzo_mesh.dir/berger_rigoutsos.cpp.o.d"
  "/root/repo/src/mesh/boundary.cpp" "src/mesh/CMakeFiles/enzo_mesh.dir/boundary.cpp.o" "gcc" "src/mesh/CMakeFiles/enzo_mesh.dir/boundary.cpp.o.d"
  "/root/repo/src/mesh/grid.cpp" "src/mesh/CMakeFiles/enzo_mesh.dir/grid.cpp.o" "gcc" "src/mesh/CMakeFiles/enzo_mesh.dir/grid.cpp.o.d"
  "/root/repo/src/mesh/hierarchy.cpp" "src/mesh/CMakeFiles/enzo_mesh.dir/hierarchy.cpp.o" "gcc" "src/mesh/CMakeFiles/enzo_mesh.dir/hierarchy.cpp.o.d"
  "/root/repo/src/mesh/interpolate.cpp" "src/mesh/CMakeFiles/enzo_mesh.dir/interpolate.cpp.o" "gcc" "src/mesh/CMakeFiles/enzo_mesh.dir/interpolate.cpp.o.d"
  "/root/repo/src/mesh/project.cpp" "src/mesh/CMakeFiles/enzo_mesh.dir/project.cpp.o" "gcc" "src/mesh/CMakeFiles/enzo_mesh.dir/project.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ext/CMakeFiles/enzo_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/enzo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
