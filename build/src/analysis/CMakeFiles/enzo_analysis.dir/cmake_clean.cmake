file(REMOVE_RECURSE
  "CMakeFiles/enzo_analysis.dir/analysis.cpp.o"
  "CMakeFiles/enzo_analysis.dir/analysis.cpp.o.d"
  "CMakeFiles/enzo_analysis.dir/derived.cpp.o"
  "CMakeFiles/enzo_analysis.dir/derived.cpp.o.d"
  "libenzo_analysis.a"
  "libenzo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
