# Empty compiler generated dependencies file for enzo_analysis.
# This may be replaced when dependencies are built.
