file(REMOVE_RECURSE
  "libenzo_analysis.a"
)
