file(REMOVE_RECURSE
  "CMakeFiles/enzo_ext.dir/dd.cpp.o"
  "CMakeFiles/enzo_ext.dir/dd.cpp.o.d"
  "libenzo_ext.a"
  "libenzo_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzo_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
