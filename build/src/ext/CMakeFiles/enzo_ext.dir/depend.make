# Empty dependencies file for enzo_ext.
# This may be replaced when dependencies are built.
