file(REMOVE_RECURSE
  "libenzo_ext.a"
)
