# Empty compiler generated dependencies file for enzo_nbody.
# This may be replaced when dependencies are built.
