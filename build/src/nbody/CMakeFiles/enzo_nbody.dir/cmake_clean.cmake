file(REMOVE_RECURSE
  "CMakeFiles/enzo_nbody.dir/nbody.cpp.o"
  "CMakeFiles/enzo_nbody.dir/nbody.cpp.o.d"
  "libenzo_nbody.a"
  "libenzo_nbody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzo_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
