file(REMOVE_RECURSE
  "libenzo_nbody.a"
)
