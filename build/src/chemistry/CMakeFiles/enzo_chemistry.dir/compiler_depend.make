# Empty compiler generated dependencies file for enzo_chemistry.
# This may be replaced when dependencies are built.
