
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chemistry/network.cpp" "src/chemistry/CMakeFiles/enzo_chemistry.dir/network.cpp.o" "gcc" "src/chemistry/CMakeFiles/enzo_chemistry.dir/network.cpp.o.d"
  "/root/repo/src/chemistry/rates.cpp" "src/chemistry/CMakeFiles/enzo_chemistry.dir/rates.cpp.o" "gcc" "src/chemistry/CMakeFiles/enzo_chemistry.dir/rates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/enzo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/cosmology/CMakeFiles/enzo_cosmology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/enzo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/enzo_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/enzo_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
