file(REMOVE_RECURSE
  "CMakeFiles/enzo_chemistry.dir/network.cpp.o"
  "CMakeFiles/enzo_chemistry.dir/network.cpp.o.d"
  "CMakeFiles/enzo_chemistry.dir/rates.cpp.o"
  "CMakeFiles/enzo_chemistry.dir/rates.cpp.o.d"
  "libenzo_chemistry.a"
  "libenzo_chemistry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzo_chemistry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
