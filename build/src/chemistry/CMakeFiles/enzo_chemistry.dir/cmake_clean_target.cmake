file(REMOVE_RECURSE
  "libenzo_chemistry.a"
)
