# Empty compiler generated dependencies file for enzo_parallel.
# This may be replaced when dependencies are built.
