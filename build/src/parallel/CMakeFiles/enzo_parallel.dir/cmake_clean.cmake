file(REMOVE_RECURSE
  "CMakeFiles/enzo_parallel.dir/comm.cpp.o"
  "CMakeFiles/enzo_parallel.dir/comm.cpp.o.d"
  "CMakeFiles/enzo_parallel.dir/distributed.cpp.o"
  "CMakeFiles/enzo_parallel.dir/distributed.cpp.o.d"
  "CMakeFiles/enzo_parallel.dir/distributed_hierarchy.cpp.o"
  "CMakeFiles/enzo_parallel.dir/distributed_hierarchy.cpp.o.d"
  "CMakeFiles/enzo_parallel.dir/dynamic_balance.cpp.o"
  "CMakeFiles/enzo_parallel.dir/dynamic_balance.cpp.o.d"
  "CMakeFiles/enzo_parallel.dir/load_balance.cpp.o"
  "CMakeFiles/enzo_parallel.dir/load_balance.cpp.o.d"
  "CMakeFiles/enzo_parallel.dir/pipeline.cpp.o"
  "CMakeFiles/enzo_parallel.dir/pipeline.cpp.o.d"
  "CMakeFiles/enzo_parallel.dir/sterile.cpp.o"
  "CMakeFiles/enzo_parallel.dir/sterile.cpp.o.d"
  "libenzo_parallel.a"
  "libenzo_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enzo_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
