file(REMOVE_RECURSE
  "libenzo_parallel.a"
)
