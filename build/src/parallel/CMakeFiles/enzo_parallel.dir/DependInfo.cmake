
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/comm.cpp" "src/parallel/CMakeFiles/enzo_parallel.dir/comm.cpp.o" "gcc" "src/parallel/CMakeFiles/enzo_parallel.dir/comm.cpp.o.d"
  "/root/repo/src/parallel/distributed.cpp" "src/parallel/CMakeFiles/enzo_parallel.dir/distributed.cpp.o" "gcc" "src/parallel/CMakeFiles/enzo_parallel.dir/distributed.cpp.o.d"
  "/root/repo/src/parallel/distributed_hierarchy.cpp" "src/parallel/CMakeFiles/enzo_parallel.dir/distributed_hierarchy.cpp.o" "gcc" "src/parallel/CMakeFiles/enzo_parallel.dir/distributed_hierarchy.cpp.o.d"
  "/root/repo/src/parallel/dynamic_balance.cpp" "src/parallel/CMakeFiles/enzo_parallel.dir/dynamic_balance.cpp.o" "gcc" "src/parallel/CMakeFiles/enzo_parallel.dir/dynamic_balance.cpp.o.d"
  "/root/repo/src/parallel/load_balance.cpp" "src/parallel/CMakeFiles/enzo_parallel.dir/load_balance.cpp.o" "gcc" "src/parallel/CMakeFiles/enzo_parallel.dir/load_balance.cpp.o.d"
  "/root/repo/src/parallel/pipeline.cpp" "src/parallel/CMakeFiles/enzo_parallel.dir/pipeline.cpp.o" "gcc" "src/parallel/CMakeFiles/enzo_parallel.dir/pipeline.cpp.o.d"
  "/root/repo/src/parallel/sterile.cpp" "src/parallel/CMakeFiles/enzo_parallel.dir/sterile.cpp.o" "gcc" "src/parallel/CMakeFiles/enzo_parallel.dir/sterile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/enzo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/enzo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/enzo_ext.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
