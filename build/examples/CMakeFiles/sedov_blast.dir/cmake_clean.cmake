file(REMOVE_RECURSE
  "CMakeFiles/sedov_blast.dir/sedov_blast.cpp.o"
  "CMakeFiles/sedov_blast.dir/sedov_blast.cpp.o.d"
  "sedov_blast"
  "sedov_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedov_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
