# Empty dependencies file for first_star_collapse.
# This may be replaced when dependencies are built.
