file(REMOVE_RECURSE
  "CMakeFiles/first_star_collapse.dir/first_star_collapse.cpp.o"
  "CMakeFiles/first_star_collapse.dir/first_star_collapse.cpp.o.d"
  "first_star_collapse"
  "first_star_collapse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/first_star_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
