file(REMOVE_RECURSE
  "CMakeFiles/jacques_cli.dir/jacques_cli.cpp.o"
  "CMakeFiles/jacques_cli.dir/jacques_cli.cpp.o.d"
  "jacques_cli"
  "jacques_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacques_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
