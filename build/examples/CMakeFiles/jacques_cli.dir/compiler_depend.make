# Empty compiler generated dependencies file for jacques_cli.
# This may be replaced when dependencies are built.
