# Empty dependencies file for zeldovich_pancake.
# This may be replaced when dependencies are built.
