file(REMOVE_RECURSE
  "CMakeFiles/zeldovich_pancake.dir/zeldovich_pancake.cpp.o"
  "CMakeFiles/zeldovich_pancake.dir/zeldovich_pancake.cpp.o.d"
  "zeldovich_pancake"
  "zeldovich_pancake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeldovich_pancake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
