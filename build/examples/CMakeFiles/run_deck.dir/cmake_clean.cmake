file(REMOVE_RECURSE
  "CMakeFiles/run_deck.dir/run_deck.cpp.o"
  "CMakeFiles/run_deck.dir/run_deck.cpp.o.d"
  "run_deck"
  "run_deck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_deck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
