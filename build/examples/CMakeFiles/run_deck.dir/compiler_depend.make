# Empty compiler generated dependencies file for run_deck.
# This may be replaced when dependencies are built.
