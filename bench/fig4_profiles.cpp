// Figure 4 reproduction: "Radial profiles of mass-weighted spherical
// averages about the densest point in the cloud of various physical
// quantities at seven different output times": particle number density
// (panel A), enclosed gas mass (B), H I / H₂ mass fractions (C),
// temperature (D), and radial velocity with the sound speed (E).
//
// Outputs trigger on the rising central density, like the paper's sequence
// (z=19, +9 Myr, +0.3 Myr, ... +200 yr — each at ~an order of magnitude
// higher central density).  Pass --jeans N to sweep the N_J refinement
// criterion (§3.2.3 reports robustness for N_J = 4…64).

#include <cstdio>
#include <cstring>

#include "collapse_common.hpp"

using namespace enzo;

int main(int argc, char** argv) {
  double jeans = 4.0;
  int max_level = 4;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--jeans") && i + 1 < argc)
      jeans = std::atof(argv[++i]);
    if (!std::strcmp(argv[i], "--levels") && i + 1 < argc)
      max_level = std::atoi(argv[++i]);
  }

  auto run = bench::collapse_run_config(16, max_level, /*chemistry=*/true);
  run.cfg.refinement.jeans_number = jeans;
  core::Simulation sim(run.cfg);
  sim.initialize(bench::collapse_setup(run));

  const double box_pc = sim.config().units.length_cm / constants::kParsec;
  const double mass_msun =
      sim.config().units.mass_g() / constants::kSolarMass;
  const double t_kyr = sim.config().units.time_s / constants::kYear / 1e3;

  std::printf("Fig. 4 (scaled): N_J = %g, max_level = %d, box = %.1f pc\n",
              jeans, max_level, box_pc);
  std::printf("paper outputs: seven times from z=19 to +200 yr (six here: the scaled\nrun saturates its max_level resolution near 1e11 cm^-3), central n "
              "10^0 → 10^13 cm^-3\n\n");

  double next_n = 4.0 * analysis::find_densest_point(sim.hierarchy()).density *
                  sim.chem_units().n_factor;
  int outputs = 0;
  double t_prev = sim.time_d();
  // March in small time slices so the output cadence resolves the final
  // runaway (where one root CFL step can cover decades of central density).
  const double dt_slice = 0.02;
  for (int step = 0; step < 200 && outputs < 6; ++step) {
    sim.evolve_until(sim.time_d() + dt_slice, 100);
    const auto peak = analysis::find_densest_point(sim.hierarchy());
    const double n_cen = peak.density * sim.chem_units().n_factor;
    if (n_cen < next_n) continue;
    next_n = 6.0 * n_cen;
    ++outputs;

    analysis::ProfileOptions popt;
    popt.nbins = 24;
    popt.r_min = 2e-4;
    popt.r_max = 0.5;
    auto prof = analysis::radial_profile(sim.hierarchy(), peak.position, popt,
                                         sim.config().hydro,
                                         sim.chem_units());
    std::printf("=== output %d: t = %.1f kyr (+%.2f kyr), central n = %.3g "
                "cm^-3, max level %d ===\n",
                outputs, sim.time_d() * t_kyr,
                (sim.time_d() - t_prev) * t_kyr, n_cen,
                sim.hierarchy().deepest_level());
    t_prev = sim.time_d();
    std::printf("%10s %11s %12s %9s %9s %9s %8s %8s\n", "r [pc]",
                "A:n[cm^-3]", "B:M(<r)[Mo]", "C:f_HI", "C:f_H2", "D:T[K]",
                "E:v_r", "E:c_s");
    for (int b = 0; b < popt.nbins; ++b) {
      if (prof.cell_count[b] == 0) continue;
      std::printf("%10.4g %11.4g %12.4g %9.3f %9.2e %9.3g %8.3f %8.3f\n",
                  prof.r[b] * box_pc,
                  prof.gas_density[b] * sim.chem_units().n_factor,
                  prof.enclosed_gas_mass[b] * mass_msun, prof.hi_fraction[b],
                  prof.h2_fraction[b], prof.temperature[b], prof.v_radial[b],
                  prof.sound_speed[b]);
    }
    std::printf("\n");
  }

  std::printf(
      "shape checks vs the paper:\n"
      " A: envelope density ~ r^-2.2 power law around the collapsing core\n"
      " C: f_H2 ~ 1e-3 in the 'primordial molecular cloud', rising in the\n"
      "    core once three-body formation kicks in (n > 1e9 cm^-3)\n"
      " D: a few hundred K in the cooled envelope; core warms during the\n"
      "    final runaway\n"
      " E: inward v_r growing toward the core, approaching/exceeding c_s\n"
      "    (supersonic infall) at late outputs\n");
  return 0;
}
