// Overlap-topology bench: evolve the scaled collapse so the hierarchy has a
// real multi-level grid population, then time the three hot overlap
// consumers — boundary fill, particle redistribution, and the distributed
// sibling-exchange planner — with the regrid-cached neighbor lists enabled
// versus the all-pairs reference scans.  Emits BENCH_overlap_topology.json
// (per-consumer seconds for both paths, speedups, cache build time and link
// counts) for regression tracking.

#include <cstdio>
#include <string>
#include <vector>

#include "collapse_common.hpp"
#include "mesh/boundary.hpp"
#include "mesh/topology.hpp"
#include "parallel/distributed_hierarchy.hpp"
#include "perf/json.hpp"
#include "util/timer.hpp"

using namespace enzo;

namespace {

constexpr int kRepeats = 40;

struct ConsumerTimes {
  double boundary = 0.0;
  double nbody = 0.0;
  double exchange_plan = 0.0;
  std::size_t exchange_blocks = 0;
};

/// Time the overlap consumers `kRepeats` times over the evolved hierarchy.
/// The toggle must already be set; with the cache enabled, the first
/// boundary sweep pays the (separately reported) topology build and every
/// later query hits the generation-keyed cache, which is exactly the
/// steady-state the per-step code sees between rebuilds.
ConsumerTimes time_consumers(core::Simulation& sim) {
  mesh::Hierarchy& h = sim.hierarchy();
  ConsumerTimes t;
  for (int rep = 0; rep < kRepeats; ++rep) {
    {
      util::Stopwatch sw;
      for (int l = 0; l <= h.deepest_level(); ++l)
        mesh::set_boundary_values(h, l);
      t.boundary += sw.seconds();
    }
    {
      util::Stopwatch sw;
      nbody::redistribute_particles(h);
      t.nbody += sw.seconds();
    }
    {
      util::Stopwatch sw;
      std::size_t blocks = 0;
      for (int l = 0; l <= h.deepest_level(); ++l)
        blocks += parallel::plan_sibling_exchange(h, l).size();
      t.exchange_plan += sw.seconds();
      t.exchange_blocks = blocks;
    }
  }
  return t;
}

std::string consumer_json(const char* name, double all_pairs, double cached) {
  const double speedup = cached > 0.0 ? all_pairs / cached : 0.0;
  return std::string("{\"consumer\":\"") + name +
         "\",\"all_pairs_seconds\":" + perf::json_number(all_pairs) +
         ",\"cached_seconds\":" + perf::json_number(cached) +
         ",\"speedup\":" + perf::json_number(speedup) + "}";
}

}  // namespace

int main() {
  auto run = bench::collapse_run_config(16, 4, /*chemistry=*/true,
                                        /*with_dark_matter=*/true);
  core::Simulation sim(run.cfg);
  // Tile the root 4³ ways: the all-pairs sibling scan is O(grids²·shifts)
  // per level, and a single-grid root would hide exactly the cost the
  // cached neighbor lists remove.
  sim.initialize(bench::collapse_setup(run).root_tiles(4));
  bench::add_dark_matter(sim, 16, /*total_mass=*/0.1);
  for (int s = 0; s < 6; ++s) sim.advance_root_step();

  mesh::Hierarchy& h = sim.hierarchy();
  std::size_t total_grids = 0;
  for (int l = 0; l <= h.deepest_level(); ++l) total_grids += h.num_grids(l);
  std::printf("evolved collapse hierarchy: %d level(s), %zu grid(s)\n",
              h.deepest_level() + 1, total_grids);

  // Reference first: the all-pairs scans never consult the cache, so the
  // order of the two sweeps cannot contaminate the comparison.
  h.set_use_topology(false);
  const ConsumerTimes ref = time_consumers(sim);

  h.set_use_topology(true);
  // Warm the cache outside the timed region and record its one-off cost;
  // per-step consumers amortize this over every sweep between rebuilds.
  util::Stopwatch build_sw;
  const mesh::OverlapTopology& topo = h.topology();
  const double build_seconds = build_sw.seconds();
  const ConsumerTimes cached = time_consumers(sim);

  std::printf("\noverlap consumers, %d repeats (all levels per repeat)\n\n",
              kRepeats);
  std::printf("%-22s %14s %14s %10s\n", "consumer", "all-pairs [s]",
              "cached [s]", "speedup");
  const struct {
    const char* name;
    double a, c;
  } rows[] = {
      {"boundary_fill", ref.boundary, cached.boundary},
      {"nbody_redistribute", ref.nbody, cached.nbody},
      {"exchange_plan", ref.exchange_plan, cached.exchange_plan},
  };
  double ref_total = 0.0, cached_total = 0.0;
  for (const auto& r : rows) {
    ref_total += r.a;
    cached_total += r.c;
    std::printf("%-22s %14.4f %14.4f %9.2fx\n", r.name, r.a, r.c,
                r.c > 0 ? r.a / r.c : 0.0);
  }
  std::printf("%-22s %14.4f %14.4f %9.2fx\n", "total", ref_total, cached_total,
              cached_total > 0 ? ref_total / cached_total : 0.0);
  std::printf("\ntopology build: %.4f s, %zu sibling link(s) cached\n",
              build_seconds, topo.total_links());
  if (ref.exchange_blocks != cached.exchange_blocks) {
    std::fprintf(stderr,
                 "exchange plans diverge: all-pairs %zu block(s), cached %zu\n",
                 ref.exchange_blocks, cached.exchange_blocks);
    return 1;
  }

  std::string json =
      "{\"bench\":\"overlap_topology\",\"levels\":" +
      perf::json_number(h.deepest_level() + 1) +
      ",\"grids\":" + perf::json_number(total_grids) +
      ",\"repeats\":" + perf::json_number(kRepeats) +
      ",\"topology_build_seconds\":" + perf::json_number(build_seconds) +
      ",\"sibling_links\":" + perf::json_number(topo.total_links()) +
      ",\"consumers\":[" +
      consumer_json("boundary_fill", ref.boundary, cached.boundary) + "," +
      consumer_json("nbody_redistribute", ref.nbody, cached.nbody) + "," +
      consumer_json("exchange_plan", ref.exchange_plan, cached.exchange_plan) +
      "],\"total_all_pairs_seconds\":" + perf::json_number(ref_total) +
      ",\"total_cached_seconds\":" + perf::json_number(cached_total) +
      ",\"total_speedup\":" +
      perf::json_number(cached_total > 0 ? ref_total / cached_total : 0.0) +
      "}\n";
  const char* out_path = "BENCH_overlap_topology.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}
