// Figure 3 reproduction: "In these frames we show a zoom into the star
// forming region.  Each panel shows a slice of the logarithm of the gas
// density magnified by a factor of ten relative to the previous frame."
//
// We run the scaled collapse, locate the densest point, and emit a sequence
// of slices each 4× smaller than the previous (our scaled run carries ~4
// decades of spatial dynamic range instead of the paper's 12), printing each
// frame's extent, density range, and an ASCII rendering.

#include <cstdio>
#include <string>

#include "collapse_common.hpp"

using namespace enzo;

namespace {
void print_frame(const analysis::Slice& s, double half_pc, int frame) {
  std::printf("frame %d: half-width %.4g pc, log10 n in [%.2f, %.2f], "
              "finest level touched %d\n",
              frame, half_pc, s.min_log, s.max_log, s.finest_level_touched);
  const char* shades = " .:-=+*#%@";
  for (int v = s.n - 1; v >= 0; v -= 2) {
    std::string row;
    for (int u = 0; u < s.n; ++u) {
      double f = (s.log10_density[static_cast<std::size_t>(v) * s.n + u] -
                  s.min_log) /
                 std::max(s.max_log - s.min_log, 1e-10);
      if (!std::isfinite(f)) f = 0.0;
      f = std::clamp(f, 0.0, 1.0);
      row += shades[static_cast<int>(f * 9.999)];
    }
    std::printf("    |%s|\n", row.c_str());
  }
}
}  // namespace

int main() {
  auto run = bench::collapse_run_config(16, 4, /*chemistry=*/true);
  core::Simulation sim(run.cfg);
  sim.initialize(bench::collapse_setup(run));

  // Evolve until the core is deep into the runaway (central n ≥ 10⁸ cm⁻³).
  const double n_stop = 1e8;
  for (int s = 0; s < 40; ++s) {
    sim.advance_root_step();
    const double n_cen = analysis::find_densest_point(sim.hierarchy()).density *
                         sim.chem_units().n_factor;
    if (n_cen >= n_stop) break;
  }
  const auto peak = analysis::find_densest_point(sim.hierarchy());
  const double box_pc = sim.config().units.length_cm / constants::kParsec;
  std::printf("collapsed object at (%.5f, %.5f, %.5f), central n = %.3g "
              "cm^-3, deepest level %d\n\n",
              ext::pos_to_double(peak.position[0]),
              ext::pos_to_double(peak.position[1]),
              ext::pos_to_double(peak.position[2]),
              peak.density * sim.chem_units().n_factor,
              sim.hierarchy().deepest_level());

  const std::array<double, 2> c2d = {ext::pos_to_double(peak.position[0]),
                                     ext::pos_to_double(peak.position[1])};
  double half = 0.5;
  for (int frame = 0; frame < 5; ++frame) {
    auto s = analysis::density_slice(sim.hierarchy(), /*axis=*/2,
                                     peak.position[2], c2d, half, 32);
    // Report in physical units: slice holds log10 of code density.
    const double to_n = std::log10(sim.chem_units().n_factor);
    s.min_log += to_n;
    s.max_log += to_n;
    print_frame(s, half * box_pc, frame);
    std::printf("\n");
    half /= 4.0;
  }
  std::printf(
      "paper: 10x zoom per frame over 12 decades (SDR 1e12, 34 levels);\n"
      "here: 4x zoom per frame over the scaled run's dynamic range — the\n"
      "central condensation remains unresolved-structure-free (no\n"
      "fragmentation), as in §4.\n");
  return 0;
}
