// Figure 2 reproduction: "the order of timesteps for the SAMR example ...
// First the root grid is advanced, and then the subgrids 'catch-up'.  This
// permits the calculation of time-centered subgrid boundary conditions for
// higher temporal accuracy."
//
// A static three-level hierarchy is advanced one root step with W-cycle
// tracing on; the (level, t → t+dt) sequence is printed both as a list and
// as the Fig. 2 staircase diagram.

#include <cstdio>
#include <string>

#include "core/setup.hpp"
#include "core/simulation.hpp"

using namespace enzo;

int main() {
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {16, 16, 16};
  cfg.hierarchy.max_level = 2;
  cfg.trace_wcycle = true;
  cfg.rebuild_interval = 1 << 20;  // keep the tree static for the figure
  core::Simulation sim(cfg);
  sim.add_static_region(1, {{8, 8, 8}, {24, 24, 24}});
  sim.add_static_region(2, {{24, 24, 24}, {40, 40, 40}});
  sim.initialize(core::uniform_setup(1.0, 1.0));

  sim.advance_root_step();
  const auto& tr = sim.trace();
  const double t0 = tr.front().t0;
  const double dt0 = tr.front().dt;

  std::printf("order of timesteps (one root step, refinement factor 2):\n\n");
  std::printf("%4s %6s %12s %12s\n", "seq", "level", "t/dt_root", "dt/dt_root");
  for (std::size_t i = 0; i < tr.size(); ++i)
    std::printf("%4zu %6d %12.4f %12.4f\n", i, tr[i].level,
                (tr[i].t0 - t0) / dt0, tr[i].dt / dt0);

  // Staircase diagram: time axis in units of the finest step.
  std::printf("\nFig. 2 staircase (each '#' spans the step's time extent):\n");
  const int width = 32;
  for (int level = 0; level <= 2; ++level) {
    std::string row(width, ' ');
    int seq = 0;
    for (const auto& e : tr) {
      if (e.level != level) continue;
      const int lo = static_cast<int>((e.t0 - t0) / dt0 * width + 0.5);
      const int hi = static_cast<int>((e.t0 + e.dt - t0) / dt0 * width + 0.5);
      for (int c = lo; c < hi && c < width; ++c)
        row[static_cast<std::size_t>(c)] = seq % 2 ? '=' : '#';
      ++seq;
    }
    std::printf("  level %d: |%s|\n", level, row.c_str());
  }
  std::printf("\npaper: root advances once, children catch up recursively —\n"
              "the multigrid-W ordering; child steps sum *exactly* (in\n"
              "128-bit time) to the parent step.\n");
  return 0;
}
