// §5 flop-rate reproduction.
//
// Paper methodology: count operations for a representative run segment with
// the R10000 hardware counter (64-bit build), time the same segment on the
// SP2 at full 128-bit precision, divide → ~13 Gflop/s sustained on 64
// processors.  Then the "virtual flop rate": a static grid equivalent to the
// final resolution (1e12 cells per side, ~1e10 timesteps → ~1e50 operations)
// delivered in the same 1e6 s wall clock → ~1e44 flop/s.
//
// We do the analogous accounting: analytic per-kernel operation counts read
// back through the metrics registry's "flops" source (fed by the
// instrumented solvers — the "future project" of §5), wall-clock for the
// same segment, the identical virtual-rate arithmetic for our scaled run,
// and a machine-readable BENCH_table_flops.json.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "collapse_common.hpp"
#include "perf/json.hpp"
#include "perf/metrics.hpp"
#include "util/flops.hpp"
#include "util/timer.hpp"

using namespace enzo;

int main() {
  util::FlopCounter::global().reset();

  auto run = bench::collapse_run_config(16, 4, /*chemistry=*/true,
                                        /*with_dark_matter=*/true);
  core::Simulation sim(run.cfg);
  sim.initialize(bench::collapse_setup(run));
  bench::add_dark_matter(sim, 16, 0.1);

  util::Stopwatch wall;
  int root_steps = 0;
  for (; root_steps < 8; ++root_steps) sim.advance_root_step();
  const double seconds = wall.seconds();

  // Read the per-component counts back through the registry snapshot — the
  // FlopCounter registers itself as the "flops" source, so this exercises
  // the same path every registry consumer uses.
  std::vector<std::pair<std::string, double>> rows;
  double total = 0.0;
  for (const perf::Registry::Sample& s : perf::Registry::global().snapshot()) {
    constexpr const char* kPrefix = "flops.";
    if (s.name.rfind(kPrefix, 0) != 0) continue;
    const std::string component = s.name.substr(6);
    if (component == "total") {
      total = s.value;
      continue;
    }
    rows.emplace_back(component, s.value);
  }

  std::printf("sustained-rate accounting (scaled run, %d root steps):\n\n",
              root_steps);
  std::printf("%-16s %18s\n", "component", "operations");
  for (auto& [name, count] : rows)
    std::printf("%-16s %18.0f\n", name.c_str(), count);
  std::printf("%-16s %18.0f\n", "total", total);
  std::printf("\nwall clock: %.2f s  →  sustained ≈ %.3f Gflop/s\n", seconds,
              total / seconds / 1e9);
  std::printf("paper: ~13 Gflop/s sustained on 64 SP2 processors "
              "(~0.2 Gflop/s per processor; same order as one modern core\n"
              "running this much smaller, cache-unfriendly problem).\n");

  // ---- virtual flop rate -----------------------------------------------------
  // Paper arithmetic: (1e12)³ cells × 1e10 steps × O(100) flops/cell-step
  //                 ≈ 1e50 ops in ~1e6 s → ~1e44 flop/s.
  double virtual_ops_run = 0.0;
  {
    const double cells = std::pow(1e12, 3);
    const double steps = 1e10;
    const double per_cell = 100.0;
    const double virtual_ops = cells * steps * per_cell;
    std::printf("\nvirtual-rate arithmetic, paper scale:\n");
    std::printf("  static 1e12³ grid × 1e10 steps × %.0f flops ≈ %.1e ops\n",
                per_cell, virtual_ops);
    std::printf("  over 1e6 s  →  %.1e flop/s   (paper: ~1e44)\n",
                virtual_ops / 1e6);
  }
  {
    // Our scaled run: SDR = root_n × 2^max_level; the equivalent static run
    // needs SDR³ cells and SDR times more (finest) steps than root steps.
    const double sdr = 16.0 * std::pow(2.0, run.cfg.hierarchy.max_level);
    const double cells = std::pow(sdr, 3);
    const double fine_steps = root_steps * std::pow(2.0, run.cfg.hierarchy.max_level);
    // Same per-cell-step cost basis as the instrumented hydro (3 sweeps) +
    // the other solvers, so virtual vs actual compare like for like.
    const double per_cell = 3.0 * 220.0 + 400.0;
    virtual_ops_run = cells * fine_steps * per_cell;
    std::printf("\nvirtual-rate arithmetic, this run (SDR = %.0f):\n", sdr);
    std::printf("  %.1e ops over %.2f s  →  %.2e virtual flop/s vs %.2e "
                "actual\n",
                virtual_ops_run, seconds, virtual_ops_run / seconds,
                total / seconds);
    std::printf("  adaptivity leverage: %.0fx (the paper's is ~1e34x)\n",
                virtual_ops_run / total);
  }

  // ---- machine-readable output --------------------------------------------
  std::string json = "{\"bench\":\"table_flops\",\"root_steps\":" +
                     perf::json_number(root_steps) +
                     ",\"wall_seconds\":" + perf::json_number(seconds) +
                     ",\"components\":[";
  bool first = true;
  for (auto& [name, count] : rows) {
    if (!first) json += ",";
    first = false;
    json += "{\"name\":\"" + perf::json_escape(name) +
            "\",\"operations\":" + perf::json_number(count) + "}";
  }
  json += "],\"total_operations\":" + perf::json_number(total) +
          ",\"sustained_flops\":" + perf::json_number(total / seconds) +
          ",\"virtual_flops\":" +
          perf::json_number(virtual_ops_run / seconds) + "}\n";
  const char* out_path = "BENCH_table_flops.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}
