// Figure 5 reproduction: "The top left and right panels show the depth of
// the hierarchy tree and the number of grids as a function of time.  The
// bottom left and right panels plot the number of grids per level and an
// estimate of the computational work required per level (normalized so the
// maximum value is unity)" — plus the §5 memory-allocation statistics
// ("extremely large number of memory allocations and frees").
//
// Paper curves: the grid count climbs slowly to ~8000 with a sudden jump of
// the maximum level to 34 at the end as the core collapses; early times put
// most grids at moderate levels, late times invest heavily at the deepest
// levels.

#include <cstdio>
#include <vector>

#include "collapse_common.hpp"
#include "util/alloc_stats.hpp"

using namespace enzo;

int main() {
  util::AllocStats::global().reset();
  auto run = bench::collapse_run_config(16, 5, /*chemistry=*/true);
  core::Simulation sim(run.cfg);
  sim.initialize(bench::collapse_setup(run));
  const double t_kyr = sim.config().units.time_s / constants::kYear / 1e3;

  struct Snapshot {
    double t;
    int max_level;
    std::size_t grids;
    std::vector<std::size_t> per_level;
    std::vector<double> work;
  };
  std::vector<Snapshot> snaps;
  auto snap = [&] {
    const auto st = analysis::hierarchy_stats(sim.hierarchy());
    snaps.push_back({sim.time_d() * t_kyr, st.max_level, st.total_grids,
                     st.grids_per_level, st.work_per_level});
  };
  snap();
  const double n_stop = 3e9;
  for (int s = 0; s < 60; ++s) {
    sim.advance_root_step();
    snap();
    const double n_cen = analysis::find_densest_point(sim.hierarchy()).density *
                         sim.chem_units().n_factor;
    if (n_cen > n_stop) break;
  }

  std::printf("top panels: hierarchy depth and grid count vs time\n");
  std::printf("%10s %10s %8s\n", "t [kyr]", "max level", "grids");
  for (const auto& s : snaps)
    std::printf("%10.1f %10d %8zu\n", s.t, s.max_level, s.grids);

  const Snapshot& early = snaps[snaps.size() / 3];
  const Snapshot& late = snaps.back();
  std::printf("\nbottom panels: grids per level / work per level "
              "(early t=%.1f kyr vs late t=%.1f kyr)\n",
              early.t, late.t);
  std::printf("%6s %12s %12s %12s %12s\n", "level", "grids(early)",
              "grids(late)", "work(early)", "work(late)");
  const std::size_t nl = std::max(early.per_level.size(), late.per_level.size());
  for (std::size_t l = 0; l < nl; ++l) {
    const std::size_t ge = l < early.per_level.size() ? early.per_level[l] : 0;
    const std::size_t gl = l < late.per_level.size() ? late.per_level[l] : 0;
    const double we = l < early.work.size() ? early.work[l] : 0;
    const double wl = l < late.work.size() ? late.work[l] : 0;
    std::printf("%6zu %12zu %12zu %12.3f %12.3f\n", l, ge, gl, we, wl);
  }

  std::printf("\nmemory / data-structure churn (§5):\n%s",
              util::AllocStats::global().report().c_str());
  std::printf(
      "\npaper: >8000 grids, 34 levels, hierarchy rebuilt thousands of\n"
      "times, 20 GB peak; here the same *shapes* at laptop scale — the\n"
      "sudden late-time deepening and the late-time shift of work toward\n"
      "the finest levels.\n");
  return 0;
}
