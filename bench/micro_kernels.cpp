// Micro-benchmarks (google-benchmark) of the solver kernels: PPM sweeps,
// the ZEUS alternative, FFT, multigrid V-cycles, the chemistry network,
// CIC deposition, and double–double arithmetic — the per-kernel numbers
// behind the §5 performance discussion.

#include <benchmark/benchmark.h>

#include <cmath>

#include "chemistry/chemistry.hpp"
#include "ext/dd.hpp"
#include "fft/fft.hpp"
#include "gravity/gravity.hpp"
#include "hydro/hydro.hpp"
#include "mesh/boundary.hpp"
#include "mesh/hierarchy.hpp"
#include "nbody/nbody.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

using namespace enzo;
using mesh::Field;

namespace {

mesh::Hierarchy hydro_box(int n, bool chem = false) {
  mesh::HierarchyParams p;
  p.root_dims = {n, n, n};
  if (chem) p.fields = mesh::chemistry_field_list();
  mesh::Hierarchy h(p);
  h.build_root();
  mesh::Grid* g = h.grids(0)[0];
  util::Rng rng(7);
  for (Field f : g->field_list()) {
    for (auto& v : g->field(f))
      v = mesh::is_density_like(f) ? 0.5 + rng.uniform()
                                   : 0.2 * rng.uniform(-1, 1);
  }
  g->field(Field::kInternalEnergy).fill(1.0);
  g->field(Field::kTotalEnergy).fill(1.1);
  return h;
}

void BM_PpmStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto h = hydro_box(n);
  mesh::Grid* g = h.grids(0)[0];
  hydro::HydroParams hp;
  auto exp = cosmology::Expansion::statics();
  mesh::set_boundary_values(h, 0);
  for (auto _ : state) {
    hydro::solve_hydro_step(*g, 1e-4, hp, exp);
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_PpmStep)->Arg(16)->Arg(32);

void BM_ZeusStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto h = hydro_box(n);
  mesh::Grid* g = h.grids(0)[0];
  hydro::HydroParams hp;
  hp.solver = hydro::Solver::kZeus;
  auto exp = cosmology::Expansion::statics();
  mesh::set_boundary_values(h, 0);
  for (auto _ : state) hydro::solve_hydro_step(*g, 1e-4, hp, exp);
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_ZeusStep)->Arg(16)->Arg(32);

void BM_Fft3(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Array3<fft::cplx> a(n, n, n);
  util::Rng rng(3);
  for (auto& c : a) c = fft::cplx(rng.gaussian(), 0.0);
  for (auto _ : state) {
    fft::fft3(a, false);
    fft::fft3(a, true);
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Fft3)->Arg(16)->Arg(32)->Arg(64);

void BM_MultigridSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Array3<double> rhs(n + 2, n + 2, n + 2, 0.0);
  util::Rng rng(5);
  for (int k = 1; k <= n; ++k)
    for (int j = 1; j <= n; ++j)
      for (int i = 1; i <= n; ++i) rhs(i, j, k) = rng.uniform(-1, 1);
  gravity::GravityParams p;
  for (auto _ : state) {
    util::Array3<double> phi(n + 2, n + 2, n + 2, 0.0);
    gravity::multigrid_solve(phi.view(), rhs.view(), 1.0 / n, p);
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MultigridSolve)->Arg(16)->Arg(32);

void BM_ChemistryStep(benchmark::State& state) {
  auto h = hydro_box(8, true);
  mesh::Grid* g = h.grids(0)[0];
  chemistry::ChemistryParams prm;
  chemistry::initialize_primordial_composition(*g, prm, 1e-3, 1e-4);
  chemistry::ChemUnits u;
  u.n_factor = 1e4;
  u.rho_cgs = 1e4 * constants::kHydrogenMass;
  u.e_cgs = constants::kBoltzmann / constants::kHydrogenMass;
  for (auto& v : g->field(Field::kInternalEnergy)) v = 500.0;
  for (auto _ : state) chemistry::solve_chemistry_step(*g, 3.15e10, prm, u);
  state.SetItemsProcessed(state.iterations() * 8 * 8 * 8);
}
BENCHMARK(BM_ChemistryStep);

void BM_CicDeposit(benchmark::State& state) {
  auto h = hydro_box(16);
  mesh::Grid* g = h.grids(0)[0];
  g->allocate_gravity();
  util::Rng rng(11);
  for (int i = 0; i < 32768; ++i) {
    mesh::Particle p;
    p.x = {ext::pos_t(rng.uniform()), ext::pos_t(rng.uniform()),
           ext::pos_t(rng.uniform())};
    p.mass = 1.0 / 32768;
    g->particles().push_back(p);
  }
  for (auto _ : state) {
    g->gravitating_mass().fill(0.0);
    nbody::deposit_particles_cic(*g);
  }
  state.SetItemsProcessed(state.iterations() * 32768);
}
BENCHMARK(BM_CicDeposit);

void BM_DdArithmetic(benchmark::State& state) {
  using enzo::ext::dd;
  dd acc(1.0), x(1.0 + 1e-12);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) acc = acc * x + dd(1e-20);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DdArithmetic);

void BM_DoubleArithmetic(benchmark::State& state) {
  double acc = 1.0, x = 1.0 + 1e-12;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) acc = acc * x + 1e-20;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DoubleArithmetic);

}  // namespace

BENCHMARK_MAIN();
