// Micro-benchmarks (google-benchmark) of the solver kernels: PPM sweeps,
// the ZEUS alternative, FFT, multigrid V-cycles, the chemistry network,
// CIC deposition, and double–double arithmetic — the per-kernel numbers
// behind the §5 performance discussion.

#include <benchmark/benchmark.h>

#include <cmath>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "chemistry/chemistry.hpp"
#include "chemistry/rates.hpp"
#include "hydro/riemann.hpp"
#include "ext/dd.hpp"
#include "fft/fft.hpp"
#include "gravity/gravity.hpp"
#include "hydro/hydro.hpp"
#include "mesh/boundary.hpp"
#include "mesh/hierarchy.hpp"
#include "nbody/nbody.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

using namespace enzo;
using mesh::Field;

namespace {

mesh::Hierarchy hydro_box(int n, bool chem = false) {
  mesh::HierarchyParams p;
  p.root_dims = {n, n, n};
  if (chem) p.fields = mesh::chemistry_field_list();
  mesh::Hierarchy h(p);
  h.build_root();
  mesh::Grid* g = h.grids(0)[0];
  util::Rng rng(7);
  for (Field f : g->field_list()) {
    for (auto& v : g->field(f))
      v = mesh::is_density_like(f) ? 0.5 + rng.uniform()
                                   : 0.2 * rng.uniform(-1, 1);
  }
  g->field(Field::kInternalEnergy).fill(1.0);
  g->field(Field::kTotalEnergy).fill(1.1);
  return h;
}

void BM_PpmStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto h = hydro_box(n);
  mesh::Grid* g = h.grids(0)[0];
  hydro::HydroParams hp;
  auto exp = cosmology::Expansion::statics();
  mesh::set_boundary_values(h, 0);
  for (auto _ : state) {
    hydro::solve_hydro_step(*g, 1e-4, hp, exp);
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_PpmStep)->Arg(16)->Arg(32);

void BM_ZeusStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto h = hydro_box(n);
  mesh::Grid* g = h.grids(0)[0];
  hydro::HydroParams hp;
  hp.solver = hydro::Solver::kZeus;
  auto exp = cosmology::Expansion::statics();
  mesh::set_boundary_values(h, 0);
  for (auto _ : state) hydro::solve_hydro_step(*g, 1e-4, hp, exp);
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_ZeusStep)->Arg(16)->Arg(32);

void BM_Fft3(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Array3<fft::cplx> a(n, n, n);
  util::Rng rng(3);
  for (auto& c : a) c = fft::cplx(rng.gaussian(), 0.0);
  for (auto _ : state) {
    fft::fft3(a, false);
    fft::fft3(a, true);
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Fft3)->Arg(16)->Arg(32)->Arg(64);

void BM_MultigridSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Array3<double> rhs(n + 2, n + 2, n + 2, 0.0);
  util::Rng rng(5);
  for (int k = 1; k <= n; ++k)
    for (int j = 1; j <= n; ++j)
      for (int i = 1; i <= n; ++i) rhs(i, j, k) = rng.uniform(-1, 1);
  gravity::GravityParams p;
  for (auto _ : state) {
    util::Array3<double> phi(n + 2, n + 2, n + 2, 0.0);
    gravity::multigrid_solve(phi.view(), rhs.view(), 1.0 / n, p);
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MultigridSolve)->Arg(16)->Arg(32);

void BM_ChemistryStep(benchmark::State& state) {
  auto h = hydro_box(8, true);
  mesh::Grid* g = h.grids(0)[0];
  chemistry::ChemistryParams prm;
  chemistry::initialize_primordial_composition(*g, prm, 1e-3, 1e-4);
  chemistry::ChemUnits u;
  u.n_factor = 1e4;
  u.rho_cgs = 1e4 * constants::kHydrogenMass;
  u.e_cgs = constants::kBoltzmann / constants::kHydrogenMass;
  for (auto& v : g->field(Field::kInternalEnergy)) v = 500.0;
  for (auto _ : state) chemistry::solve_chemistry_step(*g, 3.15e10, prm, u);
  state.SetItemsProcessed(state.iterations() * 8 * 8 * 8);
}
BENCHMARK(BM_ChemistryStep);

void BM_CicDeposit(benchmark::State& state) {
  auto h = hydro_box(16);
  mesh::Grid* g = h.grids(0)[0];
  g->allocate_gravity();
  util::Rng rng(11);
  for (int i = 0; i < 32768; ++i) {
    mesh::Particle p;
    p.x = {ext::pos_t(rng.uniform()), ext::pos_t(rng.uniform()),
           ext::pos_t(rng.uniform())};
    p.mass = 1.0 / 32768;
    g->particles().push_back(p);
  }
  for (auto _ : state) {
    g->gravitating_mass().fill(0.0);
    nbody::deposit_particles_cic(*g);
  }
  state.SetItemsProcessed(state.iterations() * 32768);
}
BENCHMARK(BM_CicDeposit);

void BM_DdArithmetic(benchmark::State& state) {
  using enzo::ext::dd;
  dd acc(1.0), x(1.0 + 1e-12);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) acc = acc * x + dd(1e-20);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DdArithmetic);

void BM_DoubleArithmetic(benchmark::State& state) {
  double acc = 1.0, x = 1.0 + 1e-12;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) acc = acc * x + 1e-20;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DoubleArithmetic);

void BM_RiemannBatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(17);
  std::vector<double> rho_l(n), u_l(n), p_l(n), rho_r(n), u_r(n), p_r(n);
  std::vector<double> rho(n), u(n), p(n), pstar(n), ustar(n);
  std::vector<double> cl(n), cr(n), wl(n), wr(n);
  for (int f = 0; f < n; ++f) {
    rho_l[f] = 0.5 + rng.uniform();
    rho_r[f] = 0.5 + rng.uniform();
    p_l[f] = 0.1 + rng.uniform();
    p_r[f] = 0.1 + rng.uniform();
    u_l[f] = rng.uniform(-1, 1);
    u_r[f] = rng.uniform(-1, 1);
  }
  const hydro::RiemannBatch b{rho_l.data(), u_l.data(),   p_l.data(),
                              rho_r.data(), u_r.data(),   p_r.data(),
                              rho.data(),   u.data(),     p.data(),
                              pstar.data(), ustar.data(), cl.data(),
                              cr.data(),    wl.data(),    wr.data()};
  for (auto _ : state) {
    hydro::riemann_two_shock_batch(0, n - 1, b, 5.0 / 3.0);
    benchmark::DoNotOptimize(rho.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RiemannBatch)->Arg(256);

void BM_RateBatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> T(n);
  for (int i = 0; i < n; ++i)
    T[i] = std::pow(10.0, 1.0 + 5.0 * i / (n - 1.0));  // 10 K .. 1e6 K
  chemistry::RateBatch batch;
  for (auto _ : state) {
    batch.compute(n, T.data());
    benchmark::DoNotOptimize(batch.row(0).k1);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RateBatch)->Arg(256);

// ---------------------------------------------------------------------------
// Reporter: collect finalized per-kernel throughput (cells/sec) and write it
// to BENCH_micro_kernels.json alongside the usual console table.  The
// `items_per_second` counter is finalized by the framework (kIsRate) before
// ReportRuns, so the values here match the console column exactly.
// ---------------------------------------------------------------------------

struct KernelStats {
  double cells_per_second = 0.0;
  double cpu_seconds_per_iteration = 0.0;
};

class ThroughputCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      KernelStats s;
      auto it = r.counters.find("items_per_second");
      if (it != r.counters.end()) s.cells_per_second = it->second.value;
      if (r.iterations > 0)
        s.cpu_seconds_per_iteration =
            r.cpu_accumulated_time / static_cast<double>(r.iterations);
      stats_[r.benchmark_name()] = s;
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::map<std::string, KernelStats>& stats() const { return stats_; }

 private:
  std::map<std::string, KernelStats> stats_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ThroughputCollector reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  std::ofstream out("BENCH_micro_kernels.json");
  out << "{\n  \"kernels\": {\n";
  bool first = true;
  for (const auto& [name, s] : reporter.stats()) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << name << "\": {\"cells_per_second\": "
        << s.cells_per_second
        << ", \"cpu_seconds_per_iteration\": " << s.cpu_seconds_per_iteration
        << "}";
  }
  out << "\n  }\n}\n";
  benchmark::Shutdown();
  return 0;
}
