// §3.5 reproduction: extended precision arithmetic.
//
// The paper's requirements and observations:
//   * Δx/x ~ 1e-12 at SDR 1e12, with ~100× headroom → ≥1e-14: beyond double.
//   * native 128-bit was 30× slower than 64-bit on the Origin2000;
//   * restricting high precision to absolute positions/times kept the
//     high-precision share of operations at ~5 %, "resulting in considerable
//     speed (and memory) improvements".
//
// This bench measures: (1) the depth at which double-precision cell indexing
// breaks while dd stays exact; (2) the dd/double arithmetic cost ratio;
// (3) the high-precision fraction of a simulated grid update under the
// positions-only policy vs an all-dd policy.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "ext/dd.hpp"
#include "ext/position.hpp"

using enzo::ext::dd;
namespace ext = enzo::ext;

namespace {
double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main() {
  // ---- (1) indexing accuracy vs hierarchy depth ------------------------------
  std::printf("cell-index recovery: idx = floor((x - left)/dx), left = 1/3,\n"
              "dx = 2^-L/3, true idx = 1e6 (the §3.5 failure mode)\n\n");
  std::printf("%6s %22s %22s\n", "level", "double error [cells]",
              "dd error [cells]");
  for (int L : {20, 30, 40, 46, 52, 60, 64}) {
    const dd left = dd(1.0) / dd(3.0);
    const dd dx = ext::powi(dd(2.0), -L) / dd(3.0);
    const long long want = 1000000;
    const dd x = left + (dd::from_int(want) + dd(0.5)) * dx;
    const dd idx_dd = ext::floor((x - left) / dx);
    const double err_dd = idx_dd.to_double() - static_cast<double>(want);
    const double idx_double =
        std::floor((x.to_double() - left.to_double()) / dx.to_double());
    const double err_double = idx_double - static_cast<double>(want);
    std::printf("%6d %22.0f %22.0f\n", L, err_double, err_dd);
  }
  std::printf(
      "\ndouble loses the index once the cell offset drops below ~2^-52 of\n"
      "the position (level ≳ 52 at index 1e6); the paper's SDR 1e12–1e15\n"
      "with 100x headroom lives exactly there.  dd stays exact throughout.\n");

  // ---- (2) arithmetic cost ratio ---------------------------------------------
  const int n = 2000000;
  volatile double seed = 1.0000000001;  // defeats constant folding
  double t0 = now();
  double acc_d;
  {
    double acc = 1.0;
    const double x = seed;
    for (int i = 0; i < n; ++i) acc = acc * x + 1e-9;
    acc_d = acc;
  }
  const double t_double = now() - t0;
  t0 = now();
  dd acc_dd(1.0);
  {
    const dd x(seed);
    for (int i = 0; i < n; ++i) acc_dd = acc_dd * x + dd(1e-9);
  }
  const double t_dd = now() - t0;
  std::printf("\nfused mul-add chains, %d iterations (sums %.6f / %.6f):\n",
              n, acc_d, acc_dd.to_double());
  std::printf("  double: %8.4f s   dd: %8.4f s   ratio: %.1fx\n", t_double,
              t_dd, t_dd / t_double);
  std::printf("paper: native 128-bit was ~30x slower (Origin2000); the\n"
              "software double-double route costs ~5-20x, motivating the\n"
              "positions-only policy either way.\n");

  // ---- (3) high-precision operation share ------------------------------------
  // A representative grid update touching N cells: per cell ~220 flops of
  // field arithmetic (PPM), plus 6 position-derived quantities per *grid*
  // per step under the positions-only policy, versus every position-involved
  // op in dd (~12 per cell: center coordinates, radius, index recovery).
  const double per_cell_field = 220.0;
  const double per_cell_position = 12.0;
  const double cells_per_grid = 20.0 * 20 * 20;  // the paper's ~20³ grids
  const double per_grid_positions = 6.0;
  const double policy_share =
      per_grid_positions /
      (per_grid_positions + cells_per_grid * per_cell_field);
  const double particle_ops = 0.06 * cells_per_grid * per_cell_position;
  const double policy_share_with_particles =
      (per_grid_positions + particle_ops) /
      (per_grid_positions + particle_ops + cells_per_grid * per_cell_field);
  const double naive_share =
      (cells_per_grid * per_cell_position) /
      (cells_per_grid * (per_cell_position + per_cell_field));
  std::printf("\nhigh-precision operation share per grid update (20^3 cells):\n");
  std::printf("  positions-only policy:            %5.2f %%\n",
              100 * policy_share);
  std::printf("  + particle positions (0.06/cell): %5.2f %%   (paper: ~5 %%)\n",
              100 * policy_share_with_particles);
  std::printf("  naive all-position-math-in-128:   %5.2f %%\n",
              100 * naive_share);
  std::printf("\neffective slowdown from EPA at these shares (cost ratio "
              "%.0fx): policy %.2fx vs naive %.2fx\n",
              t_dd / t_double,
              1.0 + policy_share_with_particles * (t_dd / t_double - 1.0),
              1.0 + naive_share * (t_dd / t_double - 1.0));
  return 0;
}
