// §3.4 reproduction: the communication-layer optimizations, measured.
//
//   * sterile objects: "almost all messages are direct data sends; very few
//     probes are required" — we run the distributed halo exchange with and
//     without replicated metadata and report the probe counts;
//   * pipelined communications: "we can order these sends such that the data
//     that are required first are sent first ... resulted in a large
//     decrease in wait times" — modeled wait times for SAMR-like message
//     mixes;
//   * load balancing: grid-granularity distribution of an actual collapse
//     hierarchy's grids (LPT vs creation-order round-robin).

#include <cstdio>

#include "collapse_common.hpp"
#include "parallel/distributed.hpp"
#include "parallel/load_balance.hpp"
#include "parallel/pipeline.hpp"
#include "parallel/sterile.hpp"
#include "util/rng.hpp"

using namespace enzo;
using namespace enzo::parallel;

int main() {
  // ---- sterile objects -------------------------------------------------------
  std::printf("=== sterile objects: probe elimination ===\n");
  util::Array3<double> field(16, 16, 16);
  util::Rng rng(1);
  for (auto& v : field) v = rng.uniform(-1, 1);
  for (bool sterile : {false, true}) {
    DistributedRunInfo info;
    (void)distributed_jacobi(field, 2, 4, sterile, &info);
    const auto& s = info.stats;
    std::printf("  %-18s ranks=%d sends=%llu receives=%llu probes=%llu "
                "(%.0f %% of receives)\n",
                sterile ? "with sterile" : "without sterile", info.nranks,
                static_cast<unsigned long long>(s.sends),
                static_cast<unsigned long long>(s.receives),
                static_cast<unsigned long long>(s.probes),
                100.0 * s.probes / std::max<std::uint64_t>(s.receives, 1));
  }
  std::printf("  paper: 'very few probes are required' — here zero.\n\n");

  // ---- pipelined sends --------------------------------------------------------
  std::printf("=== pipelined two-phase sends: modeled receiver wait ===\n");
  std::printf("  %-26s %12s %12s %8s\n", "message mix", "naive [ms]",
              "pipelined", "gain");
  struct Mix {
    const char* name;
    std::vector<SendTask> tasks;
  };
  std::vector<Mix> mixes;
  {
    Mix m{"reverse-need uniform", {}};
    for (int i = 0; i < 64; ++i) m.tasks.push_back({i % 8, 4e5, 63 - i});
    mixes.push_back(std::move(m));
  }
  {
    Mix m{"random need, mixed sizes", {}};
    util::Rng r(9);
    for (int i = 0; i < 64; ++i)
      m.tasks.push_back({i % 8, 1e4 + 1e6 * r.uniform(),
                         static_cast<int>(r.uniform(0, 64))});
    mixes.push_back(std::move(m));
  }
  {
    Mix m{"boundary-first (SAMR)", {}};
    util::Rng r(10);
    // Many small boundary strips needed early + a few big interior blocks
    // needed late — the SAMR boundary-exchange pattern.
    for (int i = 0; i < 48; ++i) m.tasks.push_back({i % 8, 5e4, i});
    for (int i = 0; i < 8; ++i) m.tasks.push_back({i, 4e6, 48 + i});
    std::reverse(m.tasks.begin(), m.tasks.end());  // created interior-first
    mixes.push_back(std::move(m));
  }
  for (const auto& m : mixes) {
    const double bw = 1e8, lat = 2e-5, proc = 5e-3;
    const double naive =
        simulated_wait(m.tasks, naive_order(m.tasks.size()), bw, lat, proc);
    const double piped =
        simulated_wait(m.tasks, pipeline_order(m.tasks), bw, lat, proc);
    std::printf("  %-26s %12.2f %12.2f %7.1fx\n", m.name, naive * 1e3,
                piped * 1e3, naive / std::max(piped, 1e-12));
  }
  std::printf("  paper: 'a large decrease in wait times'.\n\n");

  // ---- load balancing on a real hierarchy --------------------------------------
  std::printf("=== grid-granularity load balance of a collapse hierarchy ===\n");
  auto run = bench::collapse_run_config(32, 3, /*chemistry=*/false);
  // Tighter clustering efficiency → many smaller grids, the paper's regime
  // ("grids are generally small (~20³) and numerous").
  run.cfg.hierarchy.cluster.min_efficiency = 0.85;
  run.cfg.refinement.baryon_mass_threshold *= 0.4;
  core::Simulation sim(run.cfg);
  sim.initialize(bench::collapse_setup(run));
  sim.advance_root_step();
  std::vector<double> weights;
  double steps = 1.0;
  for (int l = 0; l <= sim.hierarchy().deepest_level(); ++l) {
    for (const mesh::Grid* g : sim.hierarchy().grids(l))
      weights.push_back(static_cast<double>(g->box().volume()) * steps);
    steps *= 2.0;
  }
  std::printf("  %zu grids over %d levels; weights = cells x timestep "
              "ratio\n",
              weights.size(), sim.hierarchy().deepest_level() + 1);
  for (int ranks : {4, 8, 16, 64}) {
    const auto lpt = balance_lpt(weights, ranks);
    const auto rr = balance_round_robin(weights, ranks);
    std::printf("  %3d ranks: LPT imbalance %6.1f %%   round-robin %6.1f %%\n",
                ranks, 100 * lpt.imbalance(), 100 * rr.imbalance());
  }
  std::printf("  paper: 'load balancing becomes a serious headache since\n"
              "  small regions of the original grid eventually dominate' —\n"
              "  at high rank counts even LPT saturates at the single-\n"
              "  heaviest-grid floor, the §5 '40%% communication and load\n"
              "  imbalance' regime.\n");
  return 0;
}
