// Figure 1 reproduction: the two-dimensional SAMR example — "a root grid has
// two sub-grids with one-half the mesh spacing and one sub-grid has an
// additional sub-sub-grid with even higher resolution.  The tree structure
// on the left represents how these data are stored, while on the right we
// show the resulting composite solution."
//
// We set up a 2-d density field with two separated features (one needing a
// second refinement level), let the refinement criteria + Berger–Rigoutsos
// build the hierarchy, and print both the storage tree and the composite
// (finest-available) resolution map.

#include <cstdio>
#include <string>

#include "analysis/analysis.hpp"
#include "core/simulation.hpp"
#include "mesh/boundary.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;

int main() {
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {32, 32, 1};  // two-dimensional
  cfg.hierarchy.max_level = 2;
  cfg.refinement.overdensity_threshold = 2.0;
  core::Simulation sim(cfg);
  // Two features: a mild blob (one refinement) and a sharp blob (two).
  core::ProblemSetup setup;
  setup.fill([](core::Simulation& s) {
    Grid* root = s.hierarchy().grids(0)[0];
    for (Field f : root->field_list()) root->field(f).fill(0.0);
    root->field(Field::kInternalEnergy).fill(1.0);
    root->field(Field::kTotalEnergy).fill(1.0);
    const auto rho = root->field(Field::kDensity);
    for (int j = 0; j < 32; ++j)
      for (int i = 0; i < 32; ++i) {
        const double x = (i + 0.5) / 32, y = (j + 0.5) / 32;
        const double d1 =
            std::exp(-(std::pow(x - 0.25, 2) + std::pow(y - 0.7, 2)) / 0.004);
        const double d2 =
            std::exp(-(std::pow(x - 0.7, 2) + std::pow(y - 0.3, 2)) / 0.002);
        rho(root->sx(i), root->sy(j), 0) = 1.0 + 3.0 * d1 + 40.0 * d2;
      }
  });
  sim.initialize(setup);

  // ---- the storage tree (Fig. 1 left) ---------------------------------------
  std::printf("grid hierarchy tree (Fig. 1 left):\n");
  const auto print_node = [&](const Grid* g, int indent) {
    std::printf("%*slevel %d grid #%llu  cells %lld  box %s\n", indent, "",
                g->level(), static_cast<unsigned long long>(g->id()),
                static_cast<long long>(g->box().volume()),
                g->box().str().c_str());
  };
  for (const Grid* g0 : sim.hierarchy().grids(0)) {
    print_node(g0, 0);
    for (const Grid* g1 : sim.hierarchy().grids(1)) {
      if (g1->parent() != g0) continue;
      print_node(g1, 2);
      for (const Grid* g2 : sim.hierarchy().grids(2)) {
        if (g2->parent() != g1) continue;
        print_node(g2, 4);
      }
    }
  }

  // ---- the composite solution (Fig. 1 right) --------------------------------
  std::printf("\ncomposite resolution map (finest level covering each root "
              "cell; Fig. 1 right):\n");
  for (int j = 31; j >= 0; --j) {
    std::string row;
    for (int i = 0; i < 32; ++i) {
      int finest = 0;
      for (int l = 1; l <= sim.hierarchy().deepest_level(); ++l) {
        const std::int64_t s = std::int64_t(1) << l;
        for (const Grid* g : sim.hierarchy().grids(l)) {
          const mesh::IndexBox& b = g->box();
          if (i * s >= b.lo[0] && i * s < b.hi[0] && j * s >= b.lo[1] &&
              j * s < b.hi[1])
            finest = std::max(finest, l);
        }
      }
      row += finest == 0 ? '.' : static_cast<char>('0' + finest);
    }
    std::printf("  %s\n", row.c_str());
  }

  const auto st = analysis::hierarchy_stats(sim.hierarchy());
  std::printf("\npaper: 1 root + 2 subgrids + 1 sub-subgrid (schematic)\n");
  std::printf("built: levels=%d, grids per level:", st.max_level + 1);
  for (std::size_t l = 0; l < st.grids_per_level.size(); ++l)
    std::printf(" L%zu:%zu", l, st.grids_per_level[l]);
  std::printf("\n(the machinery generalizes the schematic: counts depend on "
              "the clustering efficiency parameter)\n");
  return 0;
}
