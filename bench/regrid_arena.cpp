// Regrid-storm bench (§5): the hierarchy is rebuilt thousands of times per
// run, so rebuild cost — and the "extremely large number of memory
// allocations and frees" it generates — is a first-order concern.  Drives
// steady-state rebuilds of a refined hierarchy under the three storage
// strategies (plain heap / pooled blocks / pooled + incremental keep) and
// reports wall time per rebuild, AllocStats heap allocations per rebuild,
// the arena pool hit rate, and kept-grid counts.  Emits BENCH_regrid.json
// for regression tracking.

#include <cstdio>
#include <string>
#include <vector>

#include "mesh/field_storage.hpp"
#include "mesh/hierarchy.hpp"
#include "perf/json.hpp"
#include "perf/metrics.hpp"
#include "util/alloc_stats.hpp"
#include "util/timer.hpp"

using namespace enzo;
using mesh::Grid;
using mesh::Hierarchy;
using mesh::Index3;

namespace {

constexpr int kWarmups = 3;   // reach the nesting steady state + prime pools
constexpr int kRebuilds = 20;

/// Flag a fixed global sphere of parent cells: position-based, so every
/// rebuild reproduces the same boxes — the steady state of a long run
/// between bursts of structural change.
Hierarchy::FlagFn sphere_flagger() {
  return [](const Grid& g, std::vector<Index3>& flags) {
    const Index3 dims = g.spec().level_dims;
    for (std::int64_t k = g.box().lo[2]; k < g.box().hi[2]; ++k)
      for (std::int64_t j = g.box().lo[1]; j < g.box().hi[1]; ++j)
        for (std::int64_t i = g.box().lo[0]; i < g.box().hi[0]; ++i) {
          const double x = (static_cast<double>(i) + 0.5) / dims[0] - 0.5;
          const double y = (static_cast<double>(j) + 0.5) / dims[1] - 0.5;
          const double z = (static_cast<double>(k) + 0.5) / dims[2] - 0.5;
          if (x * x + y * y + z * z < 0.2 * 0.2) flags.push_back({i, j, k});
        }
  };
}

struct ModeResult {
  std::string mode;
  double rebuild_seconds = 0.0;
  double heap_allocs_per_rebuild = 0.0;
  double arena_hit_rate = 0.0;
  double kept_grids_per_rebuild = 0.0;
  std::size_t grids = 0;
};

ModeResult run_mode(const std::string& name, const mesh::ArenaOptions& opt) {
  mesh::HierarchyParams p;
  p.root_dims = {32, 32, 32};
  p.max_level = 2;
  p.arena = opt;
  Hierarchy h(p);
  h.build_root();
  for (Grid* g : h.grids(0)) {
    for (mesh::Field f : g->field_list()) g->field(f).fill(1.0);
    g->store_old_fields();
  }
  const Hierarchy::FlagFn flag = sphere_flagger();
  for (int i = 0; i < kWarmups; ++i) h.rebuild(1, flag);

  perf::Registry& reg = perf::Registry::global();
  const std::uint64_t allocs0 = util::AllocStats::global().allocations();
  const std::uint64_t hits0 = reg.counter("arena.pool_hits").value();
  const std::uint64_t miss0 = reg.counter("arena.pool_misses").value();
  const std::uint64_t kept0 = reg.counter("arena.regrid_kept_grids").value();
  util::Stopwatch sw;
  for (int i = 0; i < kRebuilds; ++i) h.rebuild(1, flag);
  ModeResult r;
  r.mode = name;
  r.rebuild_seconds = sw.seconds() / kRebuilds;
  r.heap_allocs_per_rebuild =
      static_cast<double>(util::AllocStats::global().allocations() - allocs0) /
      kRebuilds;
  const std::uint64_t hits = reg.counter("arena.pool_hits").value() - hits0;
  const std::uint64_t misses =
      reg.counter("arena.pool_misses").value() - miss0;
  r.arena_hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  r.kept_grids_per_rebuild =
      static_cast<double>(reg.counter("arena.regrid_kept_grids").value() -
                          kept0) /
      kRebuilds;
  r.grids = h.total_grids();
  h.check_invariants();
  return r;
}

}  // namespace

int main() {
  mesh::ArenaOptions heap;
  heap.pool = false;
  heap.incremental = false;
  mesh::ArenaOptions pool_only;
  pool_only.incremental = false;
  const ModeResult modes[] = {
      run_mode("heap_full", heap),
      run_mode("pool_full", pool_only),
      run_mode("pool_incremental", mesh::ArenaOptions{}),
  };

  std::printf("steady-state regrid storm, %d rebuilds per mode\n\n",
              kRebuilds);
  std::printf("%-18s %14s %16s %10s %12s\n", "mode", "rebuild [s]",
              "allocs/rebuild", "hit rate", "kept/rebuild");
  for (const ModeResult& m : modes)
    std::printf("%-18s %14.6f %16.1f %10.3f %12.1f\n", m.mode.c_str(),
                m.rebuild_seconds, m.heap_allocs_per_rebuild,
                m.arena_hit_rate, m.kept_grids_per_rebuild);
  const double base = modes[0].rebuild_seconds;
  if (modes[2].rebuild_seconds > 0.0)
    std::printf("\nincremental speedup over heap_full: %.2fx\n",
                base / modes[2].rebuild_seconds);

  const char* out_path = "BENCH_regrid.json";
  std::string json = "{\"bench\":\"regrid_arena\",\"rebuilds\":" +
                     std::to_string(kRebuilds) + ",\"modes\":[";
  bool first = true;
  for (const ModeResult& m : modes) {
    if (!first) json += ",";
    first = false;
    json += "{\"mode\":\"" + perf::json_escape(m.mode) +
            "\",\"grids\":" + std::to_string(m.grids) +
            ",\"rebuild_seconds\":" + perf::json_number(m.rebuild_seconds) +
            ",\"heap_allocs_per_rebuild\":" +
            perf::json_number(m.heap_allocs_per_rebuild) +
            ",\"arena_hit_rate\":" + perf::json_number(m.arena_hit_rate) +
            ",\"kept_grids_per_rebuild\":" +
            perf::json_number(m.kept_grids_per_rebuild) + "}";
  }
  json += "]}\n";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "failed to write %s\n", out_path);
    return 1;
  }
  return 0;
}
