#pragma once
// Shared driver for the figure-reproduction benches: the scaled first-star
// collapse run (DESIGN.md substitution table) with configurable depth.

#include "analysis/analysis.hpp"
#include "core/setup.hpp"
#include "core/simulation.hpp"
#include "nbody/nbody.hpp"
#include "util/constants.hpp"

namespace enzo::bench {

struct CollapseRun {
  core::SimulationConfig cfg;
  core::CollapseSetupOptions opt;
};

inline CollapseRun collapse_run_config(int root_n, int max_level,
                                       bool chemistry,
                                       bool with_dark_matter = false) {
  CollapseRun r;
  r.cfg.hierarchy.root_dims = {root_n, root_n, root_n};
  r.cfg.hierarchy.max_level = max_level;
  if (chemistry) r.cfg.hierarchy.fields = mesh::chemistry_field_list();
  r.cfg.refinement.baryon_mass_threshold =
      4.0 / (static_cast<double>(root_n) * root_n * root_n);
  r.cfg.refinement.jeans_number = 4.0;
  r.cfg.enable_chemistry = chemistry;
  r.cfg.enable_particles = with_dark_matter;

  r.opt.chemistry = chemistry;
  r.opt.box_proper_cm = 4.0 * constants::kParsec;
  r.opt.mean_density_cgs = 1e-19;  // background n ≈ 6×10⁴ cm⁻³
  r.opt.overdensity = 10.0;
  r.opt.cloud_radius = 0.25;
  r.opt.temperature = 300.0;
  r.opt.h2_fraction = 5e-4;
  return r;
}

/// The CollapseRun's options as a composable ProblemSetup: benches run
/// `sim.initialize(collapse_setup(run))`, appending extra hooks first when
/// a variant needs them.
inline core::ProblemSetup collapse_setup(const CollapseRun& r) {
  return core::collapse_cloud_setup(r.opt);
}

/// Add a coarse dark-matter halo (static uniform-lattice particles carrying
/// an extra potential like the §4 minihalo) for the component-timing table.
inline void add_dark_matter(core::Simulation& sim, int n_per_axis,
                            double total_mass) {
  std::array<util::Array3<double>, 3> psi;
  for (auto& a : psi) a.resize(n_per_axis, n_per_axis, n_per_axis, 0.0);
  nbody::create_lattice_particles(*sim.hierarchy().grids(0)[0], n_per_axis,
                                  psi, 0.0, 0.0, total_mass);
  nbody::redistribute_particles(sim.hierarchy());
}

}  // namespace enzo::bench
