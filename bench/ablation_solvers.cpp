// Ablation: the two hydro solvers (§3.2.1).
//
// "We have implemented two: the piecewise parabolic method (PPM) ... as well
// as a robust finite difference technique [ZEUS].  This allows us a double
// check on any result."
//
// We run the same self-gravitating collapse with both solvers and compare
// collapse timing and envelope profiles — the "double check" — plus the Sod
// tube L1 errors quantifying the accuracy difference (PPM sharp, donor-cell
// ZEUS diffusive).

#include <cstdio>
#include <vector>

#include "collapse_common.hpp"
#include "mesh/boundary.hpp"

using namespace enzo;
using mesh::Field;

namespace {
struct Result {
  const char* name;
  double t_collapse_kyr = 0;
  std::vector<double> r, n;
};

Result run_collapse(hydro::Solver solver, const char* name) {
  auto run = bench::collapse_run_config(16, 3, /*chemistry=*/false);
  run.cfg.hydro.solver = solver;
  core::Simulation sim(run.cfg);
  sim.initialize(bench::collapse_setup(run));
  const double n_stop = 1e7;
  for (int s = 0; s < 50; ++s) {
    sim.advance_root_step();
    if (analysis::find_densest_point(sim.hierarchy()).density *
            sim.chem_units().n_factor >=
        n_stop)
      break;
  }
  Result out;
  out.name = name;
  out.t_collapse_kyr =
      sim.time_d() * sim.config().units.time_s / constants::kYear / 1e3;
  const auto peak = analysis::find_densest_point(sim.hierarchy());
  analysis::ProfileOptions popt;
  popt.nbins = 10;
  popt.r_min = 5e-3;
  popt.r_max = 0.4;
  auto prof = analysis::radial_profile(sim.hierarchy(), peak.position, popt,
                                       sim.config().hydro, sim.chem_units());
  out.r = prof.r;
  for (int b = 0; b < popt.nbins; ++b)
    out.n.push_back(prof.gas_density[b] * sim.chem_units().n_factor);
  return out;
}
}  // namespace

int main() {
  std::printf("=== collapse double-check: PPM vs ZEUS ===\n");
  Result ppm = run_collapse(hydro::Solver::kPpm, "PPM");
  Result zeus = run_collapse(hydro::Solver::kZeus, "ZEUS");
  std::printf("time to n_cen = 1e7 cm^-3:  PPM %.1f kyr,  ZEUS %.1f kyr "
              "(ratio %.2f)\n\n",
              ppm.t_collapse_kyr, zeus.t_collapse_kyr,
              zeus.t_collapse_kyr / ppm.t_collapse_kyr);
  std::printf("%10s %14s %14s %8s\n", "r [code]", "n(PPM)", "n(ZEUS)",
              "ratio");
  for (std::size_t b = 0; b < ppm.r.size(); ++b) {
    if (ppm.n[b] <= 0 || zeus.n[b] <= 0) continue;
    std::printf("%10.4f %14.4g %14.4g %8.2f\n", ppm.r[b], ppm.n[b], zeus.n[b],
                zeus.n[b] / ppm.n[b]);
  }

  std::printf("\n=== accuracy on the Sod tube (L1 density error vs exact "
              "plateau values) ===\n");
  // Quick L1 proxy: the post-shock plateau value at t=0.15.
  for (auto [solver, name] :
       {std::pair{hydro::Solver::kPpm, "PPM"},
        std::pair{hydro::Solver::kZeus, "ZEUS"}}) {
    core::SimulationConfig cfg;
    cfg.hierarchy.root_dims = {128, 1, 1};
    cfg.hierarchy.max_level = 0;
    cfg.hydro.gamma = 1.4;
    cfg.hydro.solver = solver;
    core::Simulation sim(cfg);
    sim.initialize(core::sod_tube_setup());
    sim.evolve_until(0.15, 10000);
    mesh::Grid* g = sim.hierarchy().grids(0)[0];
    // Exact at t=0.15: shock plateau 0.2656 on x∈(0.685,0.76); contact
    // plateau 0.4263 on (0.58,0.685).
    double err = 0;
    int cnt = 0;
    for (int i = 0; i < 128; ++i) {
      const double x = (i + 0.5) / 128;
      double ref = -1;
      if (x > 0.59 && x < 0.68) ref = 0.4263;
      if (x > 0.70 && x < 0.75) ref = 0.2656;
      if (ref < 0) continue;
      err += std::abs(g->field(Field::kDensity)(g->sx(i), 0, 0) - ref);
      ++cnt;
    }
    std::printf("  %-5s plateau L1 error: %.4f\n", name, err / cnt);
  }
  std::printf("\npaper's use: agreement of the two solvers on the science\n"
              "result validates it; PPM is the production solver, the\n"
              "finite-difference scheme the robust cross-check.\n");
  return 0;
}
