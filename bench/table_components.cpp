// §5 table reproduction: the fraction of compute time per science component.
//
//   paper (64-proc SP2):        hydrodynamics 36 %, Poisson solver 17 %,
//   chemistry & cooling 11 %, N-body 1 %, hierarchy rebuild 9 %,
//   boundary conditions 15 %, other overhead 11 %
//
// We run the instrumented scaled collapse (with a dark-matter component so
// the N-body line is exercised), read the measured table from the global
// trace recorder, print it side by side with the paper's, and emit the
// machine-readable BENCH_table_components.json for regression tracking.

#include <cstdio>
#include <map>
#include <string>

#include "collapse_common.hpp"
#include "perf/json.hpp"
#include "perf/trace.hpp"

using namespace enzo;

int main() {
  auto& recorder = perf::TraceRecorder::global();
  recorder.reset();

  auto run = bench::collapse_run_config(16, 4, /*chemistry=*/true,
                                        /*with_dark_matter=*/true);
  core::Simulation sim(run.cfg);
  core::setup_collapse_cloud(sim, run.opt);
  bench::add_dark_matter(sim, 16, /*total_mass=*/0.1);

  for (int s = 0; s < 8; ++s) sim.advance_root_step();

  const std::map<std::string, double> paper = {
      {perf::component::kHydro, 36.0},
      {perf::component::kGravity, 17.0},
      {perf::component::kChemistry, 11.0},
      {perf::component::kNbody, 1.0},
      {perf::component::kRebuild, 9.0},
      {perf::component::kBoundary, 15.0},
      {perf::component::kOther, 11.0},
  };

  std::printf("component usage (fractions of instrumented compute time)\n\n");
  std::printf("%-28s %10s %10s\n", "component", "paper", "measured");
  for (auto& [name, frac] : paper) {
    const double total = recorder.total_seconds();
    const double m =
        total > 0 ? 100.0 * recorder.component_seconds(name) / total : 0.0;
    std::printf("%-28s %8.1f %% %8.1f %%\n", name.c_str(), frac, m);
  }
  std::printf("\nraw trace report:\n%s", recorder.component_report().c_str());
  std::printf(
      "\nnotes: fractions depend on problem scale — our chemistry share is\n"
      "larger (12-species network on few, small grids), the N-body share is\n"
      "small as in the paper, and hydro+gravity dominate the rest.  The\n"
      "paper's further 40%% (communication + load imbalance on 64 procs)\n"
      "does not exist in this single-address-space run; see the parallel\n"
      "module benches for the communication-layer measurements.\n");

  // ---- machine-readable output --------------------------------------------
  std::string json = "{\"bench\":\"table_components\",\"total_seconds\":" +
                     perf::json_number(recorder.total_seconds()) +
                     ",\"components\":[";
  bool first = true;
  double fraction_sum = 0.0;
  for (const auto& row : recorder.component_table()) {
    if (!first) json += ",";
    first = false;
    fraction_sum += row.fraction;
    json += "{\"name\":\"" + perf::json_escape(row.name) +
            "\",\"seconds\":" + perf::json_number(row.seconds) +
            ",\"fraction\":" + perf::json_number(row.fraction);
    const auto it = paper.find(row.name);
    if (it != paper.end())
      json += ",\"paper_percent\":" + perf::json_number(it->second);
    json += "}";
  }
  json += "],\"fraction_sum\":" + perf::json_number(fraction_sum) + "}\n";
  const char* out_path = "BENCH_table_components.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s (fraction sum %.12f)\n", out_path, fraction_sum);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}
