// §5 table reproduction: the fraction of compute time per science component.
//
//   paper (64-proc SP2):        hydrodynamics 36 %, Poisson solver 17 %,
//   chemistry & cooling 11 %, N-body 1 %, hierarchy rebuild 9 %,
//   boundary conditions 15 %, other overhead 11 %
//
// We run the instrumented scaled collapse (with a dark-matter component so
// the N-body line is exercised), read the measured table from the global
// trace recorder, print it side by side with the paper's, and emit the
// machine-readable BENCH_table_components.json for regression tracking.
//
// A second sweep re-runs the same collapse across executor thread counts
// and emits BENCH_exec_scaling.json (threads, wall seconds, speedup over
// the serial run, plus cores_detected so a 1-core container result is not
// mistaken for an engine regression).
//
// Finally the evolved hierarchy is checkpointed (raw and compressed) and
// BENCH_checkpoint.json records snapshot size, compression ratio, and write
// throughput, so checkpoint-path regressions show up in the bench record.

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "collapse_common.hpp"
#include "exec/exec_config.hpp"
#include "io/checkpoint.hpp"
#include "perf/json.hpp"
#include "perf/trace.hpp"
#include "util/timer.hpp"

using namespace enzo;

namespace {

/// One scaled collapse run on `threads` executor lanes; returns wall seconds.
double timed_collapse(int threads) {
  auto run = bench::collapse_run_config(16, 4, /*chemistry=*/true,
                                        /*with_dark_matter=*/true);
  run.cfg.exec.threads = threads;
  run.cfg.exec.backend =
      threads == 1 ? exec::Backend::kSerial : exec::Backend::kThreadPool;
  core::Simulation sim(run.cfg);
  sim.initialize(bench::collapse_setup(run));
  bench::add_dark_matter(sim, 16, /*total_mass=*/0.1);
  util::Stopwatch wall;
  for (int s = 0; s < 8; ++s) sim.advance_root_step();
  return wall.seconds();
}

}  // namespace

int main() {
  auto& recorder = perf::TraceRecorder::global();
  recorder.reset();

  auto run = bench::collapse_run_config(16, 4, /*chemistry=*/true,
                                        /*with_dark_matter=*/true);
  core::Simulation sim(run.cfg);
  sim.initialize(bench::collapse_setup(run));
  bench::add_dark_matter(sim, 16, /*total_mass=*/0.1);

  for (int s = 0; s < 8; ++s) sim.advance_root_step();

  const std::map<std::string, double> paper = {
      {perf::component::kHydro, 36.0},
      {perf::component::kGravity, 17.0},
      {perf::component::kChemistry, 11.0},
      {perf::component::kNbody, 1.0},
      {perf::component::kRebuild, 9.0},
      {perf::component::kBoundary, 15.0},
      {perf::component::kOther, 11.0},
  };

  std::printf("component usage (fractions of instrumented compute time)\n\n");
  std::printf("%-28s %10s %10s\n", "component", "paper", "measured");
  for (auto& [name, frac] : paper) {
    const double total = recorder.total_seconds();
    const double m =
        total > 0 ? 100.0 * recorder.component_seconds(name) / total : 0.0;
    std::printf("%-28s %8.1f %% %8.1f %%\n", name.c_str(), frac, m);
  }
  std::printf("\nraw trace report:\n%s", recorder.component_report().c_str());
  std::printf(
      "\nnotes: fractions depend on problem scale — our chemistry share is\n"
      "larger (12-species network on few, small grids), the N-body share is\n"
      "small as in the paper, and hydro+gravity dominate the rest.  The\n"
      "paper's further 40%% (communication + load imbalance on 64 procs)\n"
      "does not exist in this single-address-space run; see the parallel\n"
      "module benches for the communication-layer measurements.\n");

  // ---- machine-readable output --------------------------------------------
  std::string json = "{\"bench\":\"table_components\",\"total_seconds\":" +
                     perf::json_number(recorder.total_seconds()) +
                     ",\"components\":[";
  bool first = true;
  double fraction_sum = 0.0;
  for (const auto& row : recorder.component_table()) {
    if (!first) json += ",";
    first = false;
    fraction_sum += row.fraction;
    json += "{\"name\":\"" + perf::json_escape(row.name) +
            "\",\"seconds\":" + perf::json_number(row.seconds) +
            ",\"fraction\":" + perf::json_number(row.fraction);
    const auto it = paper.find(row.name);
    if (it != paper.end())
      json += ",\"paper_percent\":" + perf::json_number(it->second);
    json += "}";
  }
  json += "],\"fraction_sum\":" + perf::json_number(fraction_sum) + "}\n";
  const char* out_path = "BENCH_table_components.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s (fraction sum %.12f)\n", out_path, fraction_sum);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }

  // ---- executor scaling sweep ---------------------------------------------
  // Same collapse, swept over LevelExecutor lane counts.  Speedup is
  // relative to the serial (threads = 1) run; on a 1-core box all rows
  // measure scheduling overhead only, which is why cores_detected is part
  // of the record.
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\nexecutor scaling (same collapse, 8 root steps, %u core(s) "
              "detected)\n\n",
              cores);
  std::printf("%8s %12s %12s %8s\n", "threads", "backend", "wall [s]",
              "speedup");
  std::string scaling = "{\"bench\":\"exec_scaling\",\"cores_detected\":" +
                        perf::json_number(cores) +
                        ",\"target_speedup\":3,\"runs\":[";
  double serial_wall = 0.0;
  bool first_run = true;
  for (const int threads : {1, 2, 4, 8}) {
    const double wall = timed_collapse(threads);
    if (threads == 1) serial_wall = wall;
    const double speedup = wall > 0 ? serial_wall / wall : 0.0;
    const char* backend = threads == 1 ? "serial" : "threadpool";
    std::printf("%8d %12s %12.3f %8.2f\n", threads, backend, wall, speedup);
    if (!first_run) scaling += ",";
    first_run = false;
    scaling += "{\"threads\":" + perf::json_number(threads) +
               ",\"backend\":\"" + backend +
               "\",\"wall_seconds\":" + perf::json_number(wall) +
               ",\"speedup\":" + perf::json_number(speedup) + "}";
  }
  scaling += "]}\n";
  const char* scaling_path = "BENCH_exec_scaling.json";
  if (std::FILE* f = std::fopen(scaling_path, "w")) {
    std::fputs(scaling.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", scaling_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", scaling_path);
    return 1;
  }

  // ---- checkpoint size / throughput ---------------------------------------
  // Snapshot the evolved hierarchy from the component run twice — once raw,
  // once with shuffle+RLE section compression — through the real atomic
  // write path, and record sizes and wall time.
  namespace fs = std::filesystem;
  const fs::path ckpt_dir = fs::temp_directory_path() / "enzo_bench_ckpt";
  fs::create_directories(ckpt_dir);
  const std::uint64_t raw_bytes = io::checkpoint_size_bytes(sim);
  std::printf("\ncheckpoint write (evolved collapse hierarchy, %.2f MiB raw)\n"
              "\n%12s %14s %10s %10s %14s\n",
              static_cast<double>(raw_bytes) / (1024.0 * 1024.0), "mode",
              "file [B]", "ratio", "wall [s]", "write [MB/s]");
  std::string ckpt_json = "{\"bench\":\"checkpoint\",\"raw_bytes\":" +
                          perf::json_number(raw_bytes) + ",\"runs\":[";
  bool first_ckpt = true;
  for (const bool compress : {false, true}) {
    io::CheckpointWriteOptions opts;
    opts.compress = compress;
    opts.executor = &sim.executor();
    const fs::path path =
        ckpt_dir / (compress ? "bench_comp.ckpt" : "bench_raw.ckpt");
    util::Stopwatch wall;
    io::write_checkpoint(sim, path.string(), opts);
    const double secs = wall.seconds();
    const auto file_bytes = static_cast<std::uint64_t>(fs::file_size(path));
    const double ratio =
        file_bytes > 0 ? static_cast<double>(raw_bytes) / file_bytes : 0.0;
    const double mb_s =
        secs > 0 ? static_cast<double>(file_bytes) / (1.0e6 * secs) : 0.0;
    const char* mode = compress ? "compressed" : "raw";
    std::printf("%12s %14llu %9.2fx %10.4f %14.1f\n", mode,
                static_cast<unsigned long long>(file_bytes), ratio, secs,
                mb_s);
    if (!first_ckpt) ckpt_json += ",";
    first_ckpt = false;
    ckpt_json += std::string("{\"mode\":\"") + mode +
                 "\",\"file_bytes\":" + perf::json_number(file_bytes) +
                 ",\"ratio\":" + perf::json_number(ratio) +
                 ",\"wall_seconds\":" + perf::json_number(secs) +
                 ",\"write_mb_s\":" + perf::json_number(mb_s) + "}";
  }
  ckpt_json += "]}\n";
  fs::remove_all(ckpt_dir);
  const char* ckpt_path = "BENCH_checkpoint.json";
  if (std::FILE* f = std::fopen(ckpt_path, "w")) {
    std::fputs(ckpt_json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", ckpt_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", ckpt_path);
    return 1;
  }
  return 0;
}
