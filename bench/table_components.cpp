// §5 table reproduction: the fraction of compute time per science component.
//
//   paper (64-proc SP2):        hydrodynamics 36 %, Poisson solver 17 %,
//   chemistry & cooling 11 %, N-body 1 %, hierarchy rebuild 9 %,
//   boundary conditions 15 %, other overhead 11 %
//
// We run the instrumented scaled collapse (with a dark-matter component so
// the N-body line is exercised) and print the measured table side by side
// with the paper's.

#include <cstdio>
#include <map>
#include <string>

#include "collapse_common.hpp"
#include "util/timer.hpp"

using namespace enzo;

int main() {
  auto& timers = util::ComponentTimers::global();
  timers.reset();

  auto run = bench::collapse_run_config(16, 4, /*chemistry=*/true,
                                        /*with_dark_matter=*/true);
  core::Simulation sim(run.cfg);
  core::setup_collapse_cloud(sim, run.opt);
  bench::add_dark_matter(sim, 16, /*total_mass=*/0.1);

  for (int s = 0; s < 8; ++s) sim.advance_root_step();

  const std::map<std::string, double> paper = {
      {util::ComponentTimers::kHydro, 36.0},
      {util::ComponentTimers::kGravity, 17.0},
      {util::ComponentTimers::kChemistry, 11.0},
      {util::ComponentTimers::kNbody, 1.0},
      {util::ComponentTimers::kRebuild, 9.0},
      {util::ComponentTimers::kBoundary, 15.0},
      {util::ComponentTimers::kOther, 11.0},
  };

  std::printf("component usage (fractions of instrumented compute time)\n\n");
  std::printf("%-28s %10s %10s\n", "component", "paper", "measured");
  double measured_total = 0;
  for (auto& [name, frac] : paper) measured_total += timers.seconds(name);
  for (auto& [name, frac] : paper) {
    const double m =
        measured_total > 0 ? 100.0 * timers.seconds(name) / measured_total
                           : 0.0;
    std::printf("%-28s %8.1f %% %8.1f %%\n", name.c_str(), frac, m);
  }
  std::printf("\nraw timer report:\n%s", timers.report().c_str());
  std::printf(
      "\nnotes: fractions depend on problem scale — our chemistry share is\n"
      "larger (12-species network on few, small grids), the N-body share is\n"
      "small as in the paper, and hydro+gravity dominate the rest.  The\n"
      "paper's further 40%% (communication + load imbalance on 64 procs)\n"
      "does not exist in this single-address-space run; see the parallel\n"
      "module benches for the communication-layer measurements.\n");
  return 0;
}
