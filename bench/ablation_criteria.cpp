// Ablation: refinement-criteria robustness (§3.2.3, §4).
//
// "We require that the cell width be less than some fraction of the local
// Jeans length (Δx < L_J/N_J) ... We have varied N_J, the number of cells
// across the local Jeans length, from 4 to 64 without seeing a significant
// difference in the results" and "We have also carried out a number of
// experiments varying the refinement criteria and find the results described
// here are quite robust."
//
// We run the scaled collapse at N_J ∈ {2, 4, 8} to a fixed central density
// and compare the envelope profiles: the paper's claim holds if the profiles
// agree to within the bin-to-bin scatter.

#include <cstdio>
#include <vector>

#include "collapse_common.hpp"

using namespace enzo;

namespace {
struct Result {
  double jeans;
  std::vector<double> r, n, T;
  double t_final_kyr;
  int max_level;
};

Result run_once(double jeans) {
  auto run = bench::collapse_run_config(16, 2, /*chemistry=*/true);
  run.cfg.refinement.jeans_number = jeans;
  core::Simulation sim(run.cfg);
  sim.initialize(bench::collapse_setup(run));
  const double n_stop = 3e6;
  for (int s = 0; s < 40; ++s) {
    sim.advance_root_step();
    if (analysis::find_densest_point(sim.hierarchy()).density *
            sim.chem_units().n_factor >=
        n_stop)
      break;
  }
  const auto peak = analysis::find_densest_point(sim.hierarchy());
  analysis::ProfileOptions popt;
  popt.nbins = 12;
  popt.r_min = 3e-3;
  popt.r_max = 0.4;
  auto prof = analysis::radial_profile(sim.hierarchy(), peak.position, popt,
                                       sim.config().hydro, sim.chem_units());
  Result out;
  out.jeans = jeans;
  out.r = prof.r;
  for (int b = 0; b < popt.nbins; ++b) {
    out.n.push_back(prof.gas_density[b] * sim.chem_units().n_factor);
    out.T.push_back(prof.temperature[b]);
  }
  out.t_final_kyr =
      sim.time_d() * sim.config().units.time_s / constants::kYear / 1e3;
  out.max_level = sim.hierarchy().deepest_level();
  return out;
}
}  // namespace

int main() {
  std::vector<Result> results;
  for (double nj : {2.0, 4.0, 8.0}) {
    std::printf("running N_J = %g ...\n", nj);
    std::fflush(stdout);
    results.push_back(run_once(nj));
  }
  std::printf("\ncollapse reached n_cen = 3e6 cm^-3 at:\n");
  for (const auto& r : results)
    std::printf("  N_J = %4g: t = %.1f kyr, deepest level %d\n", r.jeans,
                r.t_final_kyr, r.max_level);

  std::printf("\nenvelope density profiles n(r) [cm^-3]:\n%10s", "r [code]");
  for (const auto& r : results) std::printf("   N_J=%-6g", r.jeans);
  std::printf("   max ratio\n");
  double worst = 1.0;
  for (std::size_t b = 0; b < results[0].r.size(); ++b) {
    if (results[0].n[b] <= 0) continue;
    std::printf("%10.4f", results[0].r[b]);
    double lo = 1e300, hi = 0;
    for (const auto& r : results) {
      std::printf(" %11.4g", r.n[b]);
      if (r.n[b] > 0) {
        lo = std::min(lo, r.n[b]);
        hi = std::max(hi, r.n[b]);
      }
    }
    const double ratio = hi / lo;
    worst = std::max(worst, ratio);
    std::printf(" %10.2f\n", ratio);
  }
  std::printf("\nworst bin-to-bin ratio across N_J = 2..8: %.2f\n", worst);
  std::printf("paper: 'without seeing a significant difference in the "
              "results' — factors of order unity in individual bins while "
              "the power-law envelope and collapse time agree.\n");
  return 0;
}
